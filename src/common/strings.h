// Tiny string-formatting helpers shared by the error messages the public
// API surfaces (registries, planner backends, the Fleet facade).
#pragma once

#include <ios>
#include <sstream>
#include <string>
#include <vector>

namespace kairos {

/// "KAIROS, RIBBON, DRS" — the alternatives list every lookup error ends
/// with.
inline std::string JoinComma(const std::vector<std::string>& items) {
  std::string joined;
  for (const std::string& item : items) {
    if (!joined.empty()) joined += ", ";
    joined += item;
  }
  return joined;
}

/// Upper-cases ASCII — the canonical form every registry keys on
/// ("kairos" -> "KAIROS"). policy::CanonicalSchemeName forwards here.
inline std::string CanonicalName(const std::string& name) {
  std::string canonical = name;
  for (char& c : canonical) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return canonical;
}

/// "$2.49/hr" with 3 significant digits, the budget formatting used in
/// infeasibility messages.
inline std::string FormatDollarsPerHour(double dollars) {
  std::ostringstream out;
  out.precision(3);
  out << "$" << dollars << "/hr";
  return out.str();
}

/// "7.5" with 3 significant digits, falling back to fixed notation for
/// large magnitudes (control-log reasons must read "1183ms", never
/// "1.18e+03ms"). The cutoff is 999.5 — where 3-significant-digit
/// default notation itself rounds up and switches to scientific.
inline std::string FormatNumber(double value) {
  std::ostringstream out;
  if (value >= 999.5 || value <= -999.5) {
    out.precision(0);
    out << std::fixed << value;
  } else {
    out.precision(3);
    out << value;
  }
  return out.str();
}

/// "7.5s" with 3 significant digits — simulated-time formatting for
/// control-plane reasons and error messages.
inline std::string FormatSeconds(double seconds) {
  return FormatNumber(seconds) + "s";
}

}  // namespace kairos
