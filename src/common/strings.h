// Tiny string-formatting helpers shared by the error messages the public
// API surfaces (registries, planner backends, the Fleet facade).
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace kairos {

/// "KAIROS, RIBBON, DRS" — the alternatives list every lookup error ends
/// with.
inline std::string JoinComma(const std::vector<std::string>& items) {
  std::string joined;
  for (const std::string& item : items) {
    if (!joined.empty()) joined += ", ";
    joined += item;
  }
  return joined;
}

/// Upper-cases ASCII — the canonical form every registry keys on
/// ("kairos" -> "KAIROS"). policy::CanonicalSchemeName forwards here.
inline std::string CanonicalName(const std::string& name) {
  std::string canonical = name;
  for (char& c : canonical) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return canonical;
}

/// "$2.49/hr" with 3 significant digits, the budget formatting used in
/// infeasibility messages.
inline std::string FormatDollarsPerHour(double dollars) {
  std::ostringstream out;
  out.precision(3);
  out << "$" << dollars << "/hr";
  return out.str();
}

}  // namespace kairos
