#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace kairos {

std::size_t ParallelismFor(std::size_t requested, std::size_t jobs) {
  std::size_t threads = requested;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::clamp<std::size_t>(threads, 1, std::max<std::size_t>(1, jobs));
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count =
      threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : threads;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = ParallelismFor(threads, n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  ParallelFor(pool, n, fn);
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(pool.thread_count(), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One task per worker pulling indices from a shared counter: cheap
  // dynamic load balancing without per-index queue traffic.
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < workers; ++w) {
    pool.Submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace kairos
