// Benchmark fidelity knobs read from the environment, so the same binaries
// can run quick smoke sweeps or paper-fidelity sweeps without rebuilding.
#pragma once

#include <cstddef>

namespace kairos {

/// Global fidelity multiplier, from KAIROS_BENCH_SCALE (default 1.0).
/// Values < 1 shrink simulated query counts for fast smoke runs; values > 1
/// increase statistical fidelity.
double BenchScale();

/// Scales a baseline count by BenchScale(), with a floor to keep results
/// meaningful.
std::size_t ScaledCount(std::size_t baseline, std::size_t floor = 64);

}  // namespace kairos
