// ASCII-table and CSV emission for the benchmark harnesses: every fig*/table*
// bench prints its series both as an aligned table (human) and as a CSV block
// (machine, for replotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace kairos {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given number of decimals.
  static std::string Num(double v, int decimals = 2);

  /// Renders the aligned table.
  std::string Render() const;

  /// Renders as CSV (no alignment padding).
  std::string RenderCsv() const;

  /// Convenience: prints the table, then the CSV block delimited by
  /// "--- csv ---" markers, to the stream.
  void Print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kairos
