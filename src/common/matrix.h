// Minimal dense linear algebra: row-major matrix, Cholesky factorization and
// triangular solves. This is the numerical substrate for the Gaussian-process
// surrogate behind the Ribbon Bayesian-optimization baseline (Sec. 7) and for
// assignment-cost matrices.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace kairos {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construction from nested initializer lists (tests / examples).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage (size rows()*cols()).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Re-dimensions in place to rows x cols filled with `fill`, reusing the
  /// existing storage when it suffices. Lets a caller keep one Matrix as
  /// per-round scratch (the Kairos cost matrix) with no steady-state
  /// allocation once the high-water size is reached.
  void Reshape(std::size_t rows, std::size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// Matrix product this * other. Dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place lower Cholesky factorization of a symmetric positive-definite
/// matrix: returns L with A = L Lᵀ. Adds `jitter` to the diagonal before
/// factorizing (standard GP numerical guard). Throws std::domain_error if A
/// is not positive definite even with jitter.
Matrix CholeskyFactor(const Matrix& a, double jitter = 0.0);

/// Solves L y = b for lower-triangular L (forward substitution).
std::vector<double> SolveLower(const Matrix& l, const std::vector<double>& b);

/// Solves Lᵀ x = y for lower-triangular L (backward substitution).
std::vector<double> SolveLowerTransposed(const Matrix& l,
                                         const std::vector<double>& y);

/// Solves A x = b via Cholesky for SPD A.
std::vector<double> SolveSpd(const Matrix& a, const std::vector<double>& b,
                             double jitter = 0.0);

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace kairos
