#include "common/env.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace kairos {

double BenchScale() {
  static const double scale = [] {
    const char* raw = std::getenv("KAIROS_BENCH_SCALE");
    if (raw == nullptr) return 1.0;
    try {
      const double parsed = std::stod(raw);
      return parsed > 0.0 ? parsed : 1.0;
    } catch (...) {
      return 1.0;
    }
  }();
  return scale;
}

std::size_t ScaledCount(std::size_t baseline, std::size_t floor) {
  const double scaled = static_cast<double>(baseline) * BenchScale();
  return std::max(floor, static_cast<std::size_t>(scaled));
}

}  // namespace kairos
