// Classical M/M/c queueing analysis. Sec. 5.2 of the paper explains why
// Kairos could *not* use this machinery for throughput estimation: service
// times are far from exponential (they follow the batch-size mixture), the
// pool is heterogeneous, and the matcher's queue discipline is neither FCFS
// nor work-conserving per pool. We implement the M/M/c model anyway, as the
// natural strawman estimator, and quantify its ranking error against
// Kairos's upper bound in bench/ablation_queueing.
#pragma once

namespace kairos::queueing {

/// Erlang-C: probability an arrival waits in an M/M/c queue with offered
/// load a = lambda/mu (in Erlangs). Requires a < c for stability; returns
/// 1.0 when the queue is unstable.
double ErlangC(int servers, double offered_load);

/// Mean waiting time (excluding service) in seconds.
/// lambda/mu in queries/sec; returns +inf when unstable.
double MmcMeanWait(int servers, double lambda, double mu);

/// P(sojourn time > t): waiting plus one exponential service.
double MmcSojournTail(int servers, double lambda, double mu, double t);

/// Largest arrival rate lambda such that the `percentile`-th percentile of
/// the sojourn time stays within `qos_seconds`; found by bisection.
/// Returns 0 when even a lone query misses the target in expectation.
double MmcMaxRateForQos(int servers, double mu, double qos_seconds,
                        double percentile = 99.0);

/// A (deliberately naive) M/M/c-based throughput estimate for a
/// heterogeneous configuration: the base pool is modeled as an M/M/u queue
/// over the full mix; each auxiliary pool as an M/M/v queue over the
/// small-query mass it can legally serve; estimates add up. This ignores
/// every cross-pool interaction — which is precisely the paper's point.
struct PoolModel {
  int servers = 0;
  double service_rate = 0.0;  ///< mu, queries/sec per server
  double qos_seconds = 0.0;
};
double NaivePooledMmcThroughput(const PoolModel& base,
                                const PoolModel* aux_pools,
                                int num_aux_pools, double percentile = 99.0);

}  // namespace kairos::queueing
