#include "queueing/mmc.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace kairos::queueing {

double ErlangC(int servers, double offered_load) {
  if (servers <= 0) throw std::invalid_argument("ErlangC: servers <= 0");
  if (offered_load < 0.0) {
    throw std::invalid_argument("ErlangC: negative load");
  }
  if (offered_load >= servers) return 1.0;  // unstable: certain wait
  // Iterative Erlang-B, then convert to Erlang-C (numerically stable).
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = offered_load * b / (k + offered_load * b);
  }
  const double rho = offered_load / servers;
  return b / (1.0 - rho + rho * b);
}

double MmcMeanWait(int servers, double lambda, double mu) {
  if (mu <= 0.0) throw std::invalid_argument("MmcMeanWait: mu <= 0");
  const double a = lambda / mu;
  if (a >= servers) return std::numeric_limits<double>::infinity();
  const double c = ErlangC(servers, a);
  return c / (servers * mu - lambda);
}

double MmcSojournTail(int servers, double lambda, double mu, double t) {
  if (t < 0.0) return 1.0;
  const double a = lambda / mu;
  if (a >= servers) return 1.0;
  const double pc = ErlangC(servers, a);
  const double r1 = servers * mu - lambda;  // conditional-wait rate
  const double r2 = mu;                     // service rate
  // T = Wq + S; P(Wq = 0) = 1 - pc, Wq | Wq>0 ~ Exp(r1), S ~ Exp(r2).
  const double no_wait = (1.0 - pc) * std::exp(-r2 * t);
  double with_wait;
  if (std::abs(r1 - r2) < 1e-12 * r2) {
    // Equal-rate limit: Gamma(2, r).
    with_wait = pc * std::exp(-r2 * t) * (1.0 + r2 * t);
  } else {
    with_wait =
        pc * (r2 * std::exp(-r1 * t) - r1 * std::exp(-r2 * t)) / (r2 - r1);
  }
  return no_wait + with_wait;
}

double MmcMaxRateForQos(int servers, double mu, double qos_seconds,
                        double percentile) {
  if (servers <= 0 || mu <= 0.0 || qos_seconds <= 0.0) {
    throw std::invalid_argument("MmcMaxRateForQos: bad parameters");
  }
  const double tail_budget = 1.0 - percentile / 100.0;
  // Even at lambda -> 0 a query's sojourn is Exp(mu): check feasibility.
  if (std::exp(-mu * qos_seconds) > tail_budget) return 0.0;

  double lo = 0.0;
  double hi = servers * mu;  // stability bound
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (MmcSojournTail(servers, mid, mu, qos_seconds) <= tail_budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double NaivePooledMmcThroughput(const PoolModel& base,
                                const PoolModel* aux_pools, int num_aux_pools,
                                double percentile) {
  double total = MmcMaxRateForQos(base.servers, base.service_rate,
                                  base.qos_seconds, percentile);
  for (int i = 0; i < num_aux_pools; ++i) {
    const PoolModel& pool = aux_pools[i];
    if (pool.servers <= 0) continue;
    total += MmcMaxRateForQos(pool.servers, pool.service_rate,
                              pool.qos_seconds, percentile);
  }
  return total;
}

}  // namespace kairos::queueing
