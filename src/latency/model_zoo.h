// The model zoo: the five industry recommendation models the paper evaluates
// (Table 3), each with its QoS target and a calibrated latency surface over
// the paper's instance pool (Table 4).
//
// Calibration rules (asserted by tests, rationale in DESIGN.md Sec. 5):
//   1. Only the base GPU type (G1) meets QoS at the 1000-request batch cap.
//   2. Every CPU type has a non-empty QoS-feasible batch region s_j.
//   3. At least one CPU type serves small queries at a better
//      queries-per-dollar rate than G1 (otherwise heterogeneity can't pay).
//   4. The CPU/GPU slowdown reflects each model's compute profile: RM2 is
//      embedding/memory-bound (mild slowdown, r5n shines), MT-WND is
//      DNN-compute-bound (steep slowdown), NCF is tiny with a 5 ms QoS.
#pragma once

#include <string>
#include <vector>

#include "cloud/instance_type.h"
#include "latency/latency_model.h"

namespace kairos::latency {

/// One deployable model: Table 3 row + latency surface.
struct ModelSpec {
  std::string name;         ///< e.g. "RM2"
  std::string description;  ///< Table 3 "Description"
  std::string application;  ///< Table 3 "Application"
  double qos_ms;            ///< 99th-percentile tail latency target
  /// Latency curves keyed by instance short name ("G1", "C1", "C2", "T3"),
  /// so the spec can be instantiated over any catalog containing a subset
  /// of those types (the motivation pool uses only G1/C1/C2).
  std::vector<std::pair<std::string, AffineLatency>> curves;

  /// Builds the LatencyModel indexed by the catalog's TypeIds. Throws if a
  /// catalog type has no curve.
  LatencyModel Instantiate(const cloud::Catalog& catalog) const;
};

/// All five paper models, in Table 3 order: NCF, RM2, WND, MT-WND, DIEN.
const std::vector<ModelSpec>& ModelZoo();

/// Looks a model up by name; throws std::out_of_range when absent.
const ModelSpec& FindModel(const std::string& name);

/// Non-throwing lookup: nullptr when absent.
const ModelSpec* TryFindModel(const std::string& name);

/// "NCF, RM2, WND, MT-WND, DIEN" — for unknown-model error messages.
std::string ModelZooNames();

}  // namespace kairos::latency
