#include "latency/latency_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace kairos::latency {

LatencyModel::LatencyModel(std::vector<AffineLatency> curves)
    : curves_(std::move(curves)) {
  for (const AffineLatency& c : curves_) {
    if (c.base_ms < 0.0 || c.per_item_ms <= 0.0) {
      throw std::invalid_argument(
          "LatencyModel: curves need base_ms >= 0 and per_item_ms > 0");
    }
  }
}

double LatencyModel::LatencyMs(cloud::TypeId t, int batch) const {
  if (batch < 1) throw std::invalid_argument("LatencyMs: batch must be >= 1");
  const int clamped = std::min(batch, kMaxBatchSize);
  return curves_.at(t).AtBatch(clamped);
}

int LatencyModel::MaxQosBatch(cloud::TypeId t, double qos_ms, double xi) const {
  const AffineLatency& c = curves_.at(t);
  const double budget = xi * qos_ms - c.base_ms;
  if (budget < c.per_item_ms) return 0;  // cannot even serve batch 1
  const int max_batch = static_cast<int>(std::floor(budget / c.per_item_ms));
  return std::min(max_batch, kMaxBatchSize);
}

}  // namespace kairos::latency
