#include "latency/noise.h"

#include <algorithm>

namespace kairos::latency {

PredictionNoise::PredictionNoise(double sigma, Rng rng)
    : sigma_(sigma), rng_(rng) {}

double PredictionNoise::Apply(double latency) {
  if (sigma_ <= 0.0) return latency;
  const double factor = 1.0 + rng_.Normal(0.0, sigma_);
  return std::max(0.0, latency * factor);
}

}  // namespace kairos::latency
