// Latency surfaces: serving latency as a function of (instance type, batch
// size). The paper observes inference latency is deterministic (<0.5%
// variance) and almost perfectly linear in batch size (Pearson > 0.99,
// Sec. 5.1), so the surface is affine per (model, type):
//
//     latency_ms(type, b) = base_ms[type] + per_item_ms[type] * b
//
// This is the quantity every Kairos decision consumes; it replaces real
// TensorRT/CPU inference in this reproduction (see DESIGN.md Sec. 1).
#pragma once

#include <string>
#include <vector>

#include "cloud/instance_type.h"
#include "common/time.h"

namespace kairos::latency {

/// Queries are capped at this many requests per batch (Sec. 5.1: "we limit
/// the maximum batch size of a query to 1000 because of QoS constraints").
inline constexpr int kMaxBatchSize = 1000;

/// QoS safeguard factor ξ (Sec. 5.1): a completion time within (ξ..1]·T_qos
/// is already treated as a violation when planning.
inline constexpr double kQosSafety = 0.98;

/// Affine latency curve for one instance type.
struct AffineLatency {
  double base_ms = 0.0;      ///< fixed per-query overhead
  double per_item_ms = 0.0;  ///< marginal cost per batched request

  double AtBatch(int batch) const { return base_ms + per_item_ms * batch; }
};

/// Latency surface of one ML model across a catalog of instance types.
class LatencyModel {
 public:
  /// `curves` must be indexed by TypeId of the catalog used at query time.
  explicit LatencyModel(std::vector<AffineLatency> curves);

  std::size_t NumTypes() const { return curves_.size(); }
  const AffineLatency& Curve(cloud::TypeId t) const { return curves_.at(t); }

  /// Serving latency in milliseconds.
  double LatencyMs(cloud::TypeId t, int batch) const;

  /// Serving latency in simulator seconds.
  Time Latency(cloud::TypeId t, int batch) const {
    return MsToSec(LatencyMs(t, batch));
  }

  /// Largest batch size this type can serve within ξ·qos_ms; 0 when even a
  /// single-request query violates QoS; capped at kMaxBatchSize.
  int MaxQosBatch(cloud::TypeId t, double qos_ms,
                  double xi = kQosSafety) const;

  /// True when the type meets ξ·QoS at the maximum batch size (the paper's
  /// defining property of a base type).
  bool MeetsQosAtMaxBatch(cloud::TypeId t, double qos_ms,
                          double xi = kQosSafety) const {
    return MaxQosBatch(t, qos_ms, xi) >= kMaxBatchSize;
  }

 private:
  std::vector<AffineLatency> curves_;
};

}  // namespace kairos::latency
