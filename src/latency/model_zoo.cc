#include "latency/model_zoo.h"

#include <stdexcept>

namespace kairos::latency {

LatencyModel ModelSpec::Instantiate(const cloud::Catalog& catalog) const {
  std::vector<AffineLatency> by_type(catalog.size());
  for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
    bool found = false;
    for (const auto& [short_name, curve] : curves) {
      if (short_name == catalog[t].short_name) {
        by_type[t] = curve;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::out_of_range("ModelSpec: no curve for catalog type " +
                              catalog[t].short_name);
    }
  }
  return LatencyModel(std::move(by_type));
}

const std::vector<ModelSpec>& ModelZoo() {
  // Coefficients are milliseconds: {base_ms, per_item_ms}. See the header
  // and DESIGN.md for the calibration constraints they satisfy.
  static const std::vector<ModelSpec> zoo = {
      {"NCF",
       "Collaborative Filtering",
       "Movie recommendation",
       /*qos_ms=*/5.0,
       {{"G1", {0.80, 0.0035}},
        {"C1", {1.00, 0.0110}},
        {"C2", {1.00, 0.0105}},
        {"T3", {1.30, 0.0200}}}},
      {"RM2",
       "Meta's recommendation model class 2",
       "High-accuracy social media posts ranking",
       /*qos_ms=*/350.0,
       {{"G1", {20.0, 0.28}},
        {"C1", {25.0, 0.42}},
        {"C2", {24.0, 0.70}},
        {"T3", {26.0, 0.45}}}},
      {"WND",
       "Google Wide and Deep recommender system",
       "Google App Store",
       /*qos_ms=*/25.0,
       {{"G1", {3.0, 0.018}},
        {"C1", {4.0, 0.055}},
        {"C2", {4.0, 0.080}},
        {"T3", {5.0, 0.095}}}},
      {"MT-WND",
       "Multi-Task Wide and Deep, predicts multiple metrics in parallel",
       "YouTube video recommendation",
       /*qos_ms=*/25.0,
       {{"G1", {3.5, 0.018}},
        {"C1", {5.0, 0.080}},
        {"C2", {6.0, 0.100}},
        {"T3", {6.5, 0.160}}}},
      {"DIEN",
       "Alibaba Deep Interest Evolution Network",
       "E-commerce",
       /*qos_ms=*/35.0,
       {{"G1", {4.0, 0.026}},
        {"C1", {6.0, 0.085}},
        {"C2", {6.0, 0.070}},
        {"T3", {7.5, 0.150}}}},
  };
  return zoo;
}

const ModelSpec& FindModel(const std::string& name) {
  if (const ModelSpec* m = TryFindModel(name)) return *m;
  throw std::out_of_range("FindModel: unknown model " + name);
}

const ModelSpec* TryFindModel(const std::string& name) {
  for (const ModelSpec& m : ModelZoo()) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string ModelZooNames() {
  std::string joined;
  for (const ModelSpec& m : ModelZoo()) {
    if (!joined.empty()) joined += ", ";
    joined += m.name;
  }
  return joined;
}

}  // namespace kairos::latency
