// Latency-prediction noise injection (Fig. 16b): an additive Gaussian white
// noise proportional to the predicted latency, emulating cloud performance
// variability (interference, transient degradation).
#pragma once

#include "common/rng.h"

namespace kairos::latency {

/// Multiplies a latency prediction by (1 + N(0, sigma)). The paper injects
/// "additive Gaussian white noise with 5% variance in latency prediction";
/// we parameterize by relative standard deviation.
class PredictionNoise {
 public:
  /// sigma = relative standard deviation (0.05 reproduces Fig. 16b).
  /// sigma == 0 disables noise entirely and never draws from the RNG.
  PredictionNoise(double sigma, Rng rng);

  /// Applies noise to a latency value (seconds or ms — unit agnostic).
  /// The result is clamped to be non-negative.
  double Apply(double latency);

  double sigma() const { return sigma_; }

 private:
  double sigma_;
  Rng rng_;
};

}  // namespace kairos::latency
