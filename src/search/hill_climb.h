// Hill climbing over a one-dimensional parameter grid — the threshold sweep
// DeepRecSys uses to tune its batch-size split (Sec. 7 "DRS"). Each probe
// is a full allowable-throughput evaluation, which is exactly the tuning
// overhead the paper charges DRS with.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace kairos::search {

/// Result of a 1-D hill climb.
struct HillClimbResult {
  std::size_t best_index = 0;  ///< index into the input grid
  double best_value = 0.0;
  std::size_t evals = 0;
};

/// Maximizes `eval` over `grid` by local ascent from the middle, extending
/// in the improving direction; falls back to scanning neighbors when flat.
/// `eval` receives grid values.
HillClimbResult HillClimb(const std::vector<int>& grid,
                          const std::function<double(int)>& eval);

/// A default threshold grid over batch sizes (coarse, paper-style sweep).
std::vector<int> DefaultThresholdGrid();

}  // namespace kairos::search
