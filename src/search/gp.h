// Gaussian-process regression with an RBF kernel — the surrogate model
// behind the Ribbon Bayesian-optimization baseline. Small and dense (the
// config spaces have ~1e3 points and BO evaluates a few dozen), so exact
// Cholesky inference is plenty.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace kairos::search {

/// GP hyperparameters.
struct GpOptions {
  double lengthscale = 1.0;    ///< RBF lengthscale over normalized inputs
  double signal_variance = 1.0;
  double noise_variance = 1e-6;
};

/// Exact GP posterior over observed (x, y) pairs.
class GaussianProcess {
 public:
  explicit GaussianProcess(GpOptions options = {});

  /// Fits the posterior; `xs` are equal-length feature vectors. Re-fitting
  /// replaces previous data. y values are internally centered.
  void Fit(const std::vector<std::vector<double>>& xs,
           const std::vector<double>& ys);

  /// Posterior mean and standard deviation at a point.
  struct Prediction {
    double mean = 0.0;
    double stddev = 0.0;
  };
  Prediction Predict(const std::vector<double>& x) const;

  bool fitted() const { return !xs_.empty(); }

 private:
  double Kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

  GpOptions options_;
  std::vector<std::vector<double>> xs_;
  double y_mean_ = 0.0;
  Matrix chol_;                  // Cholesky factor of K + noise I
  std::vector<double> alpha_;    // (K + noise I)^-1 (y - mean)
};

/// Expected improvement of a maximization objective at posterior (mu,
/// sigma) over the incumbent best.
double ExpectedImprovement(double mean, double stddev, double best);

}  // namespace kairos::search
