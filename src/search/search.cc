#include "search/search.h"

#include <stdexcept>

namespace kairos::search {

CountingEvaluator::CountingEvaluator(EvalFn fn) : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("CountingEvaluator: null EvalFn");
}

double CountingEvaluator::operator()(const cloud::Config& config) {
  if (auto it = memo_.find(config); it != memo_.end()) return it->second;
  const double qps = fn_(config);
  memo_.emplace(config, qps);
  history_.push_back(EvalRecord{config, qps});
  if (qps > best_qps_ || history_.size() == 1) {
    best_qps_ = qps;
    best_config_ = config;
  }
  return qps;
}

SearchResult CountingEvaluator::ToResult() const {
  SearchResult result;
  result.best_config = best_config_;
  result.best_qps = best_qps_;
  result.evals = history_.size();
  result.history = history_;
  return result;
}

CandidatePool::CandidatePool(std::vector<cloud::Config> configs)
    : configs_(std::move(configs)),
      alive_(configs_.size(), true),
      alive_count_(configs_.size()) {
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    index_.emplace(configs_[i], i);
  }
}

bool CandidatePool::Contains(const cloud::Config& c) const {
  const auto it = index_.find(c);
  return it != index_.end() && alive_[it->second];
}

void CandidatePool::Remove(const cloud::Config& c) {
  const auto it = index_.find(c);
  if (it == index_.end() || !alive_[it->second]) return;
  alive_[it->second] = false;
  --alive_count_;
}

void CandidatePool::RemoveSubConfigsOf(const cloud::Config& c) {
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (alive_[i] && configs_[i].IsSubConfigOf(c)) {
      alive_[i] = false;
      --alive_count_;
    }
  }
}

void CandidatePool::RemoveIf(
    const std::function<bool(const cloud::Config&)>& should_remove) {
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (alive_[i] && should_remove(configs_[i])) {
      alive_[i] = false;
      --alive_count_;
    }
  }
}

std::vector<cloud::Config> CandidatePool::Remaining() const {
  std::vector<cloud::Config> out;
  out.reserve(alive_count_);
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (alive_[i]) out.push_back(configs_[i]);
  }
  return out;
}

}  // namespace kairos::search
