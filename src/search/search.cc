#include "search/search.h"

#include <algorithm>
#include <stdexcept>

namespace kairos::search {

std::size_t FrontierWidth(std::size_t eval_threads) {
  return ParallelismFor(eval_threads,
                        std::numeric_limits<std::size_t>::max());
}

CountingEvaluator::CountingEvaluator(EvalFn fn) : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("CountingEvaluator: null EvalFn");
}

double CountingEvaluator::operator()(const cloud::Config& config) {
  // One fingerprint serves every map the lookup touches.
  const std::uint64_t fp = config.Fingerprint();
  if (const double* hit = memo_.FindHashed(fp, config)) return *hit;
  double qps;
  if (double* staged = staged_.FindHashed(fp, config)) {
    qps = *staged;  // commit the speculative result
    staged_.EraseHashed(fp, config);
  } else {
    qps = fn_(config);
  }
  memo_.InsertHashed(fp, config, qps);
  history_.push_back(EvalRecord{config, qps});
  if (qps > best_qps_ || history_.size() == 1) {
    best_qps_ = qps;
    best_config_ = config;
  }
  return qps;
}

void CountingEvaluator::EvaluateBatch(
    const std::vector<cloud::Config>& configs, std::size_t threads) {
  // Serial fallback: with one worker (or a degenerate frontier) staging is
  // pure overhead — operator() evaluates lazily and skips work on pruned
  // candidates, which staging would have paid for. Returning here keeps
  // eval_threads=1 searches identical to never calling EvaluateBatch.
  if (FrontierWidth(threads) <= 1 || configs.size() < 2) return;

  // Distinct configs not yet known; memoized and staged entries are paid
  // for already. Frontiers are small (≈ the worker count), so the linear
  // duplicate scan is cheaper than a set.
  std::vector<const cloud::Config*> missing;
  std::vector<std::uint64_t> fingerprints;
  missing.reserve(configs.size());
  fingerprints.reserve(configs.size());
  for (const cloud::Config& c : configs) {
    const std::uint64_t fp = c.Fingerprint();
    if (memo_.ContainsHashed(fp, c) || staged_.ContainsHashed(fp, c)) {
      continue;
    }
    const bool dup = std::any_of(
        missing.begin(), missing.end(),
        [&](const cloud::Config* seen) { return *seen == c; });
    if (!dup) {
      missing.push_back(&c);
      fingerprints.push_back(fp);
    }
  }
  if (missing.empty()) return;

  std::vector<double> values(missing.size());
  const std::size_t workers = ParallelismFor(threads, missing.size());
  if (workers == 1) {
    for (std::size_t i = 0; i < missing.size(); ++i) {
      values[i] = fn_(*missing[i]);
    }
  } else {
    // Size the pool for the *requested* width, not this batch's (a first
    // batch that dedups down to 2 configs must not cap an 8-thread search
    // at 2 workers forever); grow it if a later call asks wider.
    const std::size_t width = FrontierWidth(threads);
    if (pool_ == nullptr || pool_->thread_count() < width) {
      pool_ = std::make_unique<ThreadPool>(width);
    }
    ParallelFor(*pool_, missing.size(),
                [&](std::size_t i) { values[i] = fn_(*missing[i]); });
  }
  for (std::size_t i = 0; i < missing.size(); ++i) {
    staged_.InsertHashed(fingerprints[i], *missing[i], values[i]);
  }
}

SearchResult CountingEvaluator::ToResult() const {
  SearchResult result;
  result.best_config = best_config_;
  result.best_qps = best_qps_;
  result.evals = history_.size();
  result.history = history_;
  return result;
}

CandidatePool::CandidatePool(std::vector<cloud::Config> configs)
    : configs_(std::move(configs)),
      alive_(configs_.size(), true),
      alive_count_(configs_.size()) {
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    index_.emplace(configs_[i], i);
  }
}

bool CandidatePool::Contains(const cloud::Config& c) const {
  const auto it = index_.find(c);
  return it != index_.end() && alive_[it->second];
}

void CandidatePool::Remove(const cloud::Config& c) {
  const auto it = index_.find(c);
  if (it == index_.end() || !alive_[it->second]) return;
  alive_[it->second] = false;
  --alive_count_;
}

void CandidatePool::RemoveSubConfigsOf(const cloud::Config& c) {
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (alive_[i] && configs_[i].IsSubConfigOf(c)) {
      alive_[i] = false;
      --alive_count_;
    }
  }
}

void CandidatePool::RemoveIf(
    const std::function<bool(const cloud::Config&)>& should_remove) {
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (alive_[i] && should_remove(configs_[i])) {
      alive_[i] = false;
      --alive_count_;
    }
  }
}

std::vector<cloud::Config> CandidatePool::Remaining() const {
  std::vector<cloud::Config> out;
  out.reserve(alive_count_);
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (alive_[i]) out.push_back(configs_[i]);
  }
  return out;
}

}  // namespace kairos::search
