#include "search/gp.h"

#include <cmath>
#include <stdexcept>

namespace kairos::search {

GaussianProcess::GaussianProcess(GpOptions options) : options_(options) {}

double GaussianProcess::Kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return options_.signal_variance *
         std::exp(-0.5 * d2 / (options_.lengthscale * options_.lengthscale));
}

void GaussianProcess::Fit(const std::vector<std::vector<double>>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("GaussianProcess::Fit: bad data");
  }
  xs_ = xs;
  y_mean_ = 0.0;
  for (double y : ys) y_mean_ += y;
  y_mean_ /= static_cast<double>(ys.size());

  const std::size_t n = xs.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = Kernel(xs[i], xs[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += options_.noise_variance;
  }
  chol_ = CholeskyFactor(k, /*jitter=*/1e-10);
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = ys[i] - y_mean_;
  alpha_ = SolveLowerTransposed(chol_, SolveLower(chol_, centered));
}

GaussianProcess::Prediction GaussianProcess::Predict(
    const std::vector<double>& x) const {
  if (xs_.empty()) {
    throw std::logic_error("GaussianProcess::Predict before Fit");
  }
  const std::size_t n = xs_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = Kernel(x, xs_[i]);

  Prediction p;
  p.mean = y_mean_ + Dot(kstar, alpha_);
  const std::vector<double> v = SolveLower(chol_, kstar);
  const double var = Kernel(x, x) - Dot(v, v);
  p.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  return p;
}

double ExpectedImprovement(double mean, double stddev, double best) {
  if (stddev <= 0.0) return std::max(0.0, mean - best);
  const double z = (mean - best) / stddev;
  const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  return (mean - best) * cdf + stddev * pdf;
}

}  // namespace kairos::search
