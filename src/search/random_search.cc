#include "search/random_search.h"

#include <algorithm>

#include "common/rng.h"

namespace kairos::search {

SearchResult RandomSearch(const std::vector<cloud::Config>& configs,
                          const EvalFn& eval, const SearchOptions& options) {
  CountingEvaluator evaluator(eval);
  CandidatePool pool(configs);

  std::vector<cloud::Config> order = configs;
  Rng rng(options.seed);
  std::shuffle(order.begin(), order.end(), rng.engine());

  const std::size_t frontier_k = FrontierWidth(options.eval_threads);
  std::size_t prefetched_to = 0;  ///< order[0, prefetched_to) considered

  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const cloud::Config& c = order[idx];
    if (pool.empty() || evaluator.evals() >= options.max_evals) break;
    if (!pool.Contains(c)) continue;

    if (frontier_k > 1 && idx >= prefetched_to) {
      // Speculative batch over the next up-to-k still-alive candidates in
      // shuffle order; the serial commit below keeps the count, history
      // and best identical to the serial walk.
      const std::size_t budget_left = options.max_evals - evaluator.evals();
      std::vector<cloud::Config> frontier;
      std::size_t j = idx;
      for (; j < order.size() &&
             frontier.size() < std::min(frontier_k, budget_left);
           ++j) {
        if (pool.Contains(order[j])) frontier.push_back(order[j]);
      }
      prefetched_to = j;
      evaluator.EvaluateBatch(frontier, frontier_k);
    }

    const double qps = evaluator(c);
    pool.Remove(c);
    if (options.subconfig_pruning) pool.RemoveSubConfigsOf(c);
    if (options.target_qps > 0.0 && qps >= options.target_qps) break;
  }
  return evaluator.ToResult();
}

}  // namespace kairos::search
