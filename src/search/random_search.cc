#include "search/random_search.h"

#include <algorithm>

#include "common/rng.h"

namespace kairos::search {

SearchResult RandomSearch(const std::vector<cloud::Config>& configs,
                          const EvalFn& eval, const SearchOptions& options) {
  CountingEvaluator evaluator(eval);
  CandidatePool pool(configs);

  std::vector<cloud::Config> order = configs;
  Rng rng(options.seed);
  std::shuffle(order.begin(), order.end(), rng.engine());

  for (const cloud::Config& c : order) {
    if (pool.empty() || evaluator.evals() >= options.max_evals) break;
    if (!pool.Contains(c)) continue;
    const double qps = evaluator(c);
    pool.Remove(c);
    if (options.subconfig_pruning) pool.RemoveSubConfigsOf(c);
    if (options.target_qps > 0.0 && qps >= options.target_qps) break;
  }
  return evaluator.ToResult();
}

}  // namespace kairos::search
