// Random search baseline (RAND in Fig. 11): evaluates configurations in a
// uniformly shuffled order, with the same sub-configuration pruning
// courtesy Kairos+ gets, until the target throughput is reached or the
// budget is spent.
#pragma once

#include "search/search.h"

namespace kairos::search {

SearchResult RandomSearch(const std::vector<cloud::Config>& configs,
                          const EvalFn& eval,
                          const SearchOptions& options = {});

}  // namespace kairos::search
