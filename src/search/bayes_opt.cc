#include "search/bayes_opt.h"

#include <algorithm>

#include "common/rng.h"

namespace kairos::search {
namespace {

// Normalizes count vectors to [0, 1] per dimension so one GP lengthscale
// fits all types regardless of how many instances the budget affords.
std::vector<std::vector<double>> Normalize(
    const std::vector<cloud::Config>& configs) {
  if (configs.empty()) return {};
  const std::size_t dims = configs[0].NumTypes();
  std::vector<double> max_count(dims, 1.0);
  for (const cloud::Config& c : configs) {
    for (std::size_t d = 0; d < dims; ++d) {
      max_count[d] = std::max(max_count[d], static_cast<double>(c.counts()[d]));
    }
  }
  std::vector<std::vector<double>> out;
  out.reserve(configs.size());
  for (const cloud::Config& c : configs) {
    std::vector<double> x(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      x[d] = static_cast<double>(c.counts()[d]) / max_count[d];
    }
    out.push_back(std::move(x));
  }
  return out;
}

}  // namespace

SearchResult BayesOptSearch(const std::vector<cloud::Config>& configs,
                            const EvalFn& eval, const SearchOptions& options,
                            const BayesOptOptions& bo) {
  CountingEvaluator evaluator(eval);
  CandidatePool pool(configs);
  Rng rng(options.seed);
  if (configs.empty()) return evaluator.ToResult();

  const std::vector<std::vector<double>> features = Normalize(configs);
  std::map<cloud::Config, std::size_t> feature_index;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    feature_index.emplace(configs[i], i);
  }

  std::vector<std::vector<double>> seen_x;
  std::vector<double> seen_y;
  auto evaluate = [&](const cloud::Config& c) {
    const double qps = evaluator(c);
    seen_x.push_back(features[feature_index.at(c)]);
    seen_y.push_back(qps);
    pool.Remove(c);
    if (options.subconfig_pruning) pool.RemoveSubConfigsOf(c);
    return qps;
  };
  auto done = [&] {
    return pool.empty() || evaluator.evals() >= options.max_evals ||
           (options.target_qps > 0.0 &&
            evaluator.best_qps() >= options.target_qps);
  };

  // Initial design: random distinct candidates.
  {
    std::vector<cloud::Config> shuffled = configs;
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    for (std::size_t i = 0;
         i < std::min(bo.initial_design, shuffled.size()) && !done(); ++i) {
      evaluate(shuffled[i]);
    }
  }

  GaussianProcess gp(bo.gp);
  while (!done()) {
    gp.Fit(seen_x, seen_y);
    const double best = evaluator.best_qps();

    double best_ei = -1.0;
    const cloud::Config* next = nullptr;
    const std::vector<cloud::Config> remaining = pool.Remaining();
    for (const cloud::Config& c : remaining) {
      const auto p = gp.Predict(features[feature_index.at(c)]);
      const double ei = ExpectedImprovement(p.mean, p.stddev, best);
      if (ei > best_ei) {
        best_ei = ei;
        next = &c;
      }
    }
    if (next == nullptr) break;
    // Copy before evaluate() mutates the pool the pointer aims into.
    const cloud::Config chosen = *next;
    evaluate(chosen);
  }
  return evaluator.ToResult();
}

}  // namespace kairos::search
