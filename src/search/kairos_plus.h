// Kairos+ (Algorithm 1): upper-bound-assisted online search. Walks the
// configurations in descending upper-bound order; after each evaluation it
// (a) prunes every candidate whose upper bound cannot beat the best
// throughput seen so far, and (b) prunes every sub-configuration of the
// evaluated config. Terminates when the candidate pool is exhausted — at
// which point the best evaluated configuration is the optimum, assuming
// the upper bounds are valid.
#pragma once

#include "search/search.h"
#include "ub/selector.h"

namespace kairos::search {

/// Runs Algorithm 1 over a ranked candidate list (descending upper bound,
/// as produced by ub::RankByUpperBound).
SearchResult KairosPlusSearch(const std::vector<ub::RankedConfig>& ranked,
                              const EvalFn& eval,
                              const SearchOptions& options = {});

}  // namespace kairos::search
