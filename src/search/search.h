// Shared plumbing for configuration-search algorithms (Sec. 8.3): a
// memoizing, counting evaluator (an "evaluation" is one allowable-throughput
// measurement — the expensive unit all Fig. 10/11 comparisons count), a
// candidate pool with the sub-configuration pruning rule of Algorithm 1,
// and the common stopping options.
//
// The evaluator has a batched mode for the searches' hot path: a frontier
// of candidates is evaluated *speculatively* in parallel (EvaluateBatch)
// and committed lazily, one at a time, in whatever order the search asks
// for them — so the count, history and best-so-far are bit-identical to a
// serial walk, and speculative work on candidates the search prunes before
// their turn is simply discarded, never counted.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "cloud/config.h"
#include "common/flat_map.h"
#include "common/parallel.h"

namespace kairos::search {

/// Expensive throughput evaluation of one configuration (queries/sec).
using EvalFn = std::function<double(const cloud::Config&)>;

/// One recorded evaluation.
struct EvalRecord {
  cloud::Config config;
  double qps = 0.0;
};

/// Outcome common to all search algorithms.
struct SearchResult {
  cloud::Config best_config;
  double best_qps = 0.0;
  std::size_t evals = 0;  ///< unique configurations evaluated
  std::vector<EvalRecord> history;  ///< in evaluation order
};

/// Stopping rules shared by the searches.
struct SearchOptions {
  /// Stop once best-so-far reaches this throughput (0 disables). Fig. 10/11
  /// set this to the known optimum to measure "evaluations to optimal".
  double target_qps = 0.0;

  /// Hard cap on unique evaluations.
  std::size_t max_evals = std::numeric_limits<std::size_t>::max();

  /// Apply Algorithm 1's sub-configuration pruning after each evaluation
  /// (the paper grants this to the competing algorithms too, Sec. 8.3).
  bool subconfig_pruning = true;

  /// Workers evaluating a search frontier concurrently (1 = serial,
  /// 0 = hardware concurrency). Kairos+/random/genetic speculatively
  /// evaluate their next up-to-this-many candidates in one batch; the
  /// SearchResult — best config, best qps, eval count, history order — is
  /// bit-identical to the serial walk (tests/search_test.cc). Requires the
  /// EvalFn to be thread-safe; the built-in evaluators (fresh simulator
  /// per call over const inputs) are.
  std::size_t eval_threads = 1;

  std::uint64_t seed = 1;
};

/// Resolved width of the speculative evaluation frontier for an
/// eval_threads request (0 = hardware concurrency); 1 means serial.
std::size_t FrontierWidth(std::size_t eval_threads);

/// Memoizes and counts evaluations. Re-evaluating a config is free and does
/// not increment the count (matching how the paper counts evaluations).
class CountingEvaluator {
 public:
  explicit CountingEvaluator(EvalFn fn);

  /// Evaluates (or recalls) a config's throughput. A staged EvaluateBatch
  /// result is committed — counted, recorded in history — here.
  double operator()(const cloud::Config& config);

  /// The batched mode: computes the EvalFn for every distinct config in
  /// `configs` that is neither memoized nor already staged, concurrently
  /// across up to `threads` workers (0 = hardware concurrency, reusing one
  /// internal pool across calls), and *stages* the results. Nothing is
  /// committed: evals(), history() and best are untouched until operator()
  /// asks for a staged config. Requires a thread-safe EvalFn.
  ///
  /// With a serial frontier (`threads` resolves to one worker) or fewer
  /// than two candidates, this is a no-op: staging buys nothing over the
  /// lazy operator() walk and its bookkeeping was a measured regression
  /// (evals_per_sec_kairos_plus_batched < serial in bench history), so the
  /// serial path stays byte-for-byte the serial walk.
  void EvaluateBatch(const std::vector<cloud::Config>& configs,
                     std::size_t threads);

  std::size_t evals() const { return history_.size(); }
  const std::vector<EvalRecord>& history() const { return history_; }
  double best_qps() const { return best_qps_; }
  const cloud::Config& best_config() const { return best_config_; }

  /// Folds the counters into a SearchResult.
  SearchResult ToResult() const;

 private:
  /// Open-addressing memo keyed by the 64-bit config fingerprint, probed
  /// with the fingerprint precomputed once per lookup — this map is the
  /// per-evaluation overhead every Fig. 10/11 search pays.
  using Memo = FlatHashMap<cloud::Config, double, cloud::ConfigHash>;

  EvalFn fn_;
  Memo memo_;    ///< committed (counted) evaluations
  Memo staged_;  ///< speculative EvaluateBatch results, not yet counted
  std::unique_ptr<ThreadPool> pool_;  ///< lazily spawned, reused per batch
  std::vector<EvalRecord> history_;
  double best_qps_ = 0.0;
  cloud::Config best_config_;
};

/// Candidate set supporting the two pruning rules of Algorithm 1.
class CandidatePool {
 public:
  explicit CandidatePool(std::vector<cloud::Config> configs);

  bool Contains(const cloud::Config& c) const;
  void Remove(const cloud::Config& c);

  /// Prunes every strict sub-configuration of `c` (they cannot beat it:
  /// throughput is monotone under adding instances).
  void RemoveSubConfigsOf(const cloud::Config& c);

  /// Prunes candidates failing the predicate (e.g. UB <= best-so-far).
  void RemoveIf(const std::function<bool(const cloud::Config&)>& should_remove);

  std::size_t size() const { return alive_count_; }
  bool empty() const { return alive_count_ == 0; }

  /// Snapshot of remaining candidates (enumeration order preserved).
  std::vector<cloud::Config> Remaining() const;

 private:
  std::vector<cloud::Config> configs_;
  std::vector<bool> alive_;
  std::map<cloud::Config, std::size_t> index_;
  std::size_t alive_count_ = 0;
};

}  // namespace kairos::search
