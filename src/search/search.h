// Shared plumbing for configuration-search algorithms (Sec. 8.3): a
// memoizing, counting evaluator (an "evaluation" is one allowable-throughput
// measurement — the expensive unit all Fig. 10/11 comparisons count), a
// candidate pool with the sub-configuration pruning rule of Algorithm 1,
// and the common stopping options.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "cloud/config.h"

namespace kairos::search {

/// Expensive throughput evaluation of one configuration (queries/sec).
using EvalFn = std::function<double(const cloud::Config&)>;

/// One recorded evaluation.
struct EvalRecord {
  cloud::Config config;
  double qps = 0.0;
};

/// Outcome common to all search algorithms.
struct SearchResult {
  cloud::Config best_config;
  double best_qps = 0.0;
  std::size_t evals = 0;  ///< unique configurations evaluated
  std::vector<EvalRecord> history;  ///< in evaluation order
};

/// Stopping rules shared by the searches.
struct SearchOptions {
  /// Stop once best-so-far reaches this throughput (0 disables). Fig. 10/11
  /// set this to the known optimum to measure "evaluations to optimal".
  double target_qps = 0.0;

  /// Hard cap on unique evaluations.
  std::size_t max_evals = std::numeric_limits<std::size_t>::max();

  /// Apply Algorithm 1's sub-configuration pruning after each evaluation
  /// (the paper grants this to the competing algorithms too, Sec. 8.3).
  bool subconfig_pruning = true;

  std::uint64_t seed = 1;
};

/// Memoizes and counts evaluations. Re-evaluating a config is free and does
/// not increment the count (matching how the paper counts evaluations).
class CountingEvaluator {
 public:
  explicit CountingEvaluator(EvalFn fn);

  /// Evaluates (or recalls) a config's throughput.
  double operator()(const cloud::Config& config);

  std::size_t evals() const { return history_.size(); }
  const std::vector<EvalRecord>& history() const { return history_; }
  double best_qps() const { return best_qps_; }
  const cloud::Config& best_config() const { return best_config_; }

  /// Folds the counters into a SearchResult.
  SearchResult ToResult() const;

 private:
  EvalFn fn_;
  std::map<cloud::Config, double> memo_;
  std::vector<EvalRecord> history_;
  double best_qps_ = 0.0;
  cloud::Config best_config_;
};

/// Candidate set supporting the two pruning rules of Algorithm 1.
class CandidatePool {
 public:
  explicit CandidatePool(std::vector<cloud::Config> configs);

  bool Contains(const cloud::Config& c) const;
  void Remove(const cloud::Config& c);

  /// Prunes every strict sub-configuration of `c` (they cannot beat it:
  /// throughput is monotone under adding instances).
  void RemoveSubConfigsOf(const cloud::Config& c);

  /// Prunes candidates failing the predicate (e.g. UB <= best-so-far).
  void RemoveIf(const std::function<bool(const cloud::Config&)>& should_remove);

  std::size_t size() const { return alive_count_; }
  bool empty() const { return alive_count_ == 0; }

  /// Snapshot of remaining candidates (enumeration order preserved).
  std::vector<cloud::Config> Remaining() const;

 private:
  std::vector<cloud::Config> configs_;
  std::vector<bool> alive_;
  std::map<cloud::Config, std::size_t> index_;
  std::size_t alive_count_ = 0;
};

}  // namespace kairos::search
