#include "search/hill_climb.h"

#include <map>
#include <stdexcept>

namespace kairos::search {

HillClimbResult HillClimb(const std::vector<int>& grid,
                          const std::function<double(int)>& eval) {
  if (grid.empty()) throw std::invalid_argument("HillClimb: empty grid");
  HillClimbResult result;
  std::map<std::size_t, double> memo;
  auto probe = [&](std::size_t idx) {
    if (auto it = memo.find(idx); it != memo.end()) return it->second;
    const double v = eval(grid[idx]);
    memo.emplace(idx, v);
    ++result.evals;
    if (v > result.best_value || memo.size() == 1) {
      result.best_value = v;
      result.best_index = idx;
    }
    return v;
  };

  std::size_t pos = grid.size() / 2;
  double here = probe(pos);
  while (true) {
    double left = pos > 0 ? probe(pos - 1) : -1.0;
    double right = pos + 1 < grid.size() ? probe(pos + 1) : -1.0;
    if (left > here && left >= right) {
      --pos;
      here = left;
    } else if (right > here) {
      ++pos;
      here = right;
    } else {
      break;  // local maximum
    }
  }
  return result;
}

std::vector<int> DefaultThresholdGrid() {
  return {25, 50, 100, 150, 200, 300, 400, 500, 650, 800};
}

}  // namespace kairos::search
