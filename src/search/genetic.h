// Genetic-algorithm baseline (GENE in Fig. 11): tournament selection,
// uniform crossover and ±1 mutation over the instance-count vectors, with
// infeasible offspring repaired back under the budget. Gets the same
// sub-configuration pruning as Kairos+ (Sec. 8.3).
#pragma once

#include "search/search.h"

namespace kairos::search {

/// GA-specific knobs (defaults suit the ~1e3-config paper search space).
struct GeneticOptions {
  std::size_t population = 10;
  std::size_t generations = 64;
  double crossover_rate = 0.8;
  double mutation_rate = 0.35;
  std::size_t tournament = 3;
};

SearchResult GeneticSearch(const std::vector<cloud::Config>& configs,
                           const EvalFn& eval,
                           const SearchOptions& options = {},
                           const GeneticOptions& ga = {});

}  // namespace kairos::search
