// Simulated-annealing exploration (Fig. 2): a Metropolis walk over the
// configuration lattice (±1 instance on a random type, staying feasible).
// The paper uses this to demonstrate why *online* heterogeneous exploration
// is painful: most visited configurations underperform the homogeneous
// baseline while the walk converges.
#pragma once

#include "search/search.h"

namespace kairos::search {

/// Annealing knobs.
struct AnnealingOptions {
  double initial_temperature = 0.35;  ///< relative to observed QPS scale
  double cooling = 0.92;              ///< geometric cooling per step
  std::size_t steps = 40;
};

SearchResult AnnealingSearch(const std::vector<cloud::Config>& configs,
                             const EvalFn& eval,
                             const SearchOptions& options = {},
                             const AnnealingOptions& sa = {});

}  // namespace kairos::search
