#include "search/annealing.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace kairos::search {

SearchResult AnnealingSearch(const std::vector<cloud::Config>& configs,
                             const EvalFn& eval, const SearchOptions& options,
                             const AnnealingOptions& sa) {
  CountingEvaluator evaluator(eval);
  CandidatePool pool(configs);
  std::set<cloud::Config> valid(configs.begin(), configs.end());
  Rng rng(options.seed);
  if (configs.empty()) return evaluator.ToResult();

  auto evaluate = [&](const cloud::Config& c) {
    const double qps = evaluator(c);
    pool.Remove(c);
    if (options.subconfig_pruning) pool.RemoveSubConfigsOf(c);
    return qps;
  };
  auto done = [&] {
    return pool.empty() || evaluator.evals() >= options.max_evals ||
           (options.target_qps > 0.0 &&
            evaluator.best_qps() >= options.target_qps);
  };

  // Random feasible starting point.
  cloud::Config current = configs[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(configs.size()) - 1))];
  double current_qps = evaluate(current);
  double temperature = sa.initial_temperature * std::max(1.0, current_qps);

  const std::size_t dims = current.NumTypes();
  for (std::size_t step = 0; step < sa.steps && !done(); ++step) {
    // Propose a feasible neighbor: ±1 on one random type.
    cloud::Config neighbor = current;
    bool found = false;
    for (int attempt = 0; attempt < 16 && !found; ++attempt) {
      std::vector<int> counts = current.counts();
      const std::size_t d = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(dims) - 1));
      counts[d] += rng.Bernoulli(0.5) ? 1 : -1;
      if (counts[d] < 0) continue;
      cloud::Config candidate(counts);
      if (valid.count(candidate) == 0) continue;
      neighbor = std::move(candidate);
      found = true;
    }
    if (!found) break;  // isolated point; stop the walk

    const double neighbor_qps = evaluate(neighbor);
    const double delta = neighbor_qps - current_qps;
    if (delta >= 0.0 ||
        rng.Uniform() < std::exp(delta / std::max(1e-9, temperature))) {
      current = neighbor;
      current_qps = neighbor_qps;
    }
    temperature *= sa.cooling;
  }
  return evaluator.ToResult();
}

}  // namespace kairos::search
