#include "search/kairos_plus.h"

#include <algorithm>
#include <map>

namespace kairos::search {

SearchResult KairosPlusSearch(const std::vector<ub::RankedConfig>& ranked,
                              const EvalFn& eval,
                              const SearchOptions& options) {
  CountingEvaluator evaluator(eval);

  std::vector<cloud::Config> configs;
  configs.reserve(ranked.size());
  std::map<cloud::Config, double> bound_of;
  for (const ub::RankedConfig& rc : ranked) {
    configs.push_back(rc.config);
    bound_of.emplace(rc.config, rc.upper_bound);
  }
  CandidatePool pool(std::move(configs));

  const std::size_t frontier_k = FrontierWidth(options.eval_threads);
  std::size_t prefetched_to = 0;  ///< ranked[0, prefetched_to) considered

  for (std::size_t idx = 0; idx < ranked.size(); ++idx) {
    const ub::RankedConfig& rc = ranked[idx];
    if (pool.empty() || evaluator.evals() >= options.max_evals) break;
    if (!pool.Contains(rc.config)) continue;  // pruned earlier

    if (frontier_k > 1 && idx >= prefetched_to) {
      // Speculatively evaluate the UB-ordered frontier: the next up-to-k
      // still-alive candidates, capped at the remaining eval budget. The
      // serial commit below preserves Algorithm 1's count/best semantics
      // exactly; results for candidates pruned before their turn are
      // dropped unseen.
      const std::size_t budget_left = options.max_evals - evaluator.evals();
      std::vector<cloud::Config> frontier;
      std::size_t j = idx;
      for (; j < ranked.size() &&
             frontier.size() < std::min(frontier_k, budget_left);
           ++j) {
        if (pool.Contains(ranked[j].config)) {
          frontier.push_back(ranked[j].config);
        }
      }
      prefetched_to = j;
      evaluator.EvaluateBatch(frontier, frontier_k);
    }

    const double qps = evaluator(rc.config);
    pool.Remove(rc.config);

    // Prune by upper bound: nothing bounded at or below the best observed
    // throughput can become the new best.
    const double best = evaluator.best_qps();
    pool.RemoveIf([&](const cloud::Config& c) {
      return bound_of.at(c) <= best;
    });
    // Prune sub-configurations of what we just measured.
    if (options.subconfig_pruning) {
      pool.RemoveSubConfigsOf(rc.config);
    }
    if (options.target_qps > 0.0 && qps >= options.target_qps) break;
  }
  return evaluator.ToResult();
}

}  // namespace kairos::search
