#include "search/kairos_plus.h"

#include <map>

namespace kairos::search {

SearchResult KairosPlusSearch(const std::vector<ub::RankedConfig>& ranked,
                              const EvalFn& eval,
                              const SearchOptions& options) {
  CountingEvaluator evaluator(eval);

  std::vector<cloud::Config> configs;
  configs.reserve(ranked.size());
  std::map<cloud::Config, double> bound_of;
  for (const ub::RankedConfig& rc : ranked) {
    configs.push_back(rc.config);
    bound_of.emplace(rc.config, rc.upper_bound);
  }
  CandidatePool pool(std::move(configs));

  for (const ub::RankedConfig& rc : ranked) {
    if (pool.empty() || evaluator.evals() >= options.max_evals) break;
    if (!pool.Contains(rc.config)) continue;  // pruned earlier

    const double qps = evaluator(rc.config);
    pool.Remove(rc.config);

    // Prune by upper bound: nothing bounded at or below the best observed
    // throughput can become the new best.
    const double best = evaluator.best_qps();
    pool.RemoveIf([&](const cloud::Config& c) {
      return bound_of.at(c) <= best;
    });
    // Prune sub-configurations of what we just measured.
    if (options.subconfig_pruning) {
      pool.RemoveSubConfigsOf(rc.config);
    }
    if (options.target_qps > 0.0 && qps >= options.target_qps) break;
  }
  return evaluator.ToResult();
}

}  // namespace kairos::search
