#include "search/genetic.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace kairos::search {
namespace {

// Repairs a count vector to the nearest feasible candidate: must exist in
// the enumerated candidate set (which encodes budget and base-count rules).
// Decrements counts greedily until a member of the set is hit.
bool Repair(std::vector<int>& counts, const std::set<cloud::Config>& valid,
            Rng& rng) {
  for (int guard = 0; guard < 64; ++guard) {
    if (valid.count(cloud::Config(counts)) > 0) return true;
    // Decrement a random non-zero coordinate.
    std::vector<std::size_t> nonzero;
    for (std::size_t d = 0; d < counts.size(); ++d) {
      if (counts[d] > 0) nonzero.push_back(d);
    }
    if (nonzero.empty()) return false;
    const std::size_t d = nonzero[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(nonzero.size()) - 1))];
    --counts[d];
  }
  return false;
}

}  // namespace

SearchResult GeneticSearch(const std::vector<cloud::Config>& configs,
                           const EvalFn& eval, const SearchOptions& options,
                           const GeneticOptions& ga) {
  CountingEvaluator evaluator(eval);
  CandidatePool pool(configs);
  std::set<cloud::Config> valid(configs.begin(), configs.end());
  Rng rng(options.seed);

  const std::size_t dims = configs.empty() ? 0 : configs[0].NumTypes();
  if (dims == 0) return evaluator.ToResult();

  auto evaluate = [&](const cloud::Config& c) -> double {
    const double qps = evaluator(c);
    pool.Remove(c);
    if (options.subconfig_pruning) pool.RemoveSubConfigsOf(c);
    return qps;
  };
  auto done = [&] {
    return pool.empty() || evaluator.evals() >= options.max_evals ||
           (options.target_qps > 0.0 &&
            evaluator.best_qps() >= options.target_qps);
  };

  // Batched mode: frontiers (the initial population, each generation's
  // children) are speculatively evaluated in parallel, then committed
  // serially — identical SearchResult to the serial walk because commits
  // replay the serial evaluation order and speculative results for
  // never-committed candidates are discarded uncounted.
  const std::size_t frontier_k = FrontierWidth(options.eval_threads);
  auto prefetch = [&](const std::vector<cloud::Config>& frontier) {
    if (frontier_k <= 1) return;
    // Cap speculation at the remaining eval budget (like the other
    // searches): candidates past the cap are never committed, so
    // computing them would be pure waste. Duplicates inside the cap only
    // push real commits further out, never past it.
    const std::size_t budget_left = options.max_evals - evaluator.evals();
    if (frontier.size() > budget_left) {
      evaluator.EvaluateBatch(
          {frontier.begin(),
           frontier.begin() + static_cast<std::ptrdiff_t>(budget_left)},
          frontier_k);
    } else {
      evaluator.EvaluateBatch(frontier, frontier_k);
    }
  };

  // Initial population: random feasible candidates.
  std::vector<cloud::Config> population;
  std::vector<double> fitness;
  {
    std::vector<cloud::Config> shuffled = configs;
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    shuffled.resize(std::min(ga.population, shuffled.size()));
    prefetch(shuffled);
    for (const cloud::Config& c : shuffled) {
      population.push_back(c);
      fitness.push_back(evaluate(c));
      if (done()) return evaluator.ToResult();
    }
  }

  auto tournament_pick = [&]() -> const cloud::Config& {
    std::size_t best = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(population.size()) - 1));
    for (std::size_t k = 1; k < ga.tournament; ++k) {
      const std::size_t cand = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(population.size()) - 1));
      if (fitness[cand] > fitness[best]) best = cand;
    }
    return population[best];
  };

  for (std::size_t gen = 0; gen < ga.generations && !done(); ++gen) {
    // Generate the whole generation's children first — selection and
    // mutation only read the *previous* generation's fitness and the RNG,
    // never an evaluation result, so the draw sequence is identical to the
    // serial interleaving — then evaluate them as one speculative batch.
    std::vector<cloud::Config> children;
    // Attempt bound: the serial loop tolerated endless repair failures
    // only because nothing else could make progress either; keep the same
    // tolerance per child but never spin a whole generation forever.
    std::size_t attempts_left = 64 * ga.population + 1024;
    while (children.size() < ga.population && attempts_left-- > 0) {
      const cloud::Config& a = tournament_pick();
      const cloud::Config& b = tournament_pick();
      std::vector<int> child(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        const bool from_a =
            rng.Bernoulli(ga.crossover_rate) ? rng.Bernoulli(0.5) : true;
        child[d] = (from_a ? a : b).counts()[d];
      }
      if (rng.Bernoulli(ga.mutation_rate)) {
        const std::size_t d = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(dims) - 1));
        child[d] = std::max(0, child[d] + (rng.Bernoulli(0.5) ? 1 : -1));
      }
      if (!Repair(child, valid, rng)) continue;
      children.emplace_back(child);
    }
    prefetch(children);

    std::vector<cloud::Config> next_pop;
    std::vector<double> next_fit;
    for (const cloud::Config& config : children) {
      if (done()) break;
      const double qps = evaluate(config);
      next_pop.push_back(config);
      next_fit.push_back(qps);
    }
    if (next_pop.empty()) break;
    population = std::move(next_pop);
    fitness = std::move(next_fit);
  }
  return evaluator.ToResult();
}

}  // namespace kairos::search
