#include "search/genetic.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace kairos::search {
namespace {

// Repairs a count vector to the nearest feasible candidate: must exist in
// the enumerated candidate set (which encodes budget and base-count rules).
// Decrements counts greedily until a member of the set is hit.
bool Repair(std::vector<int>& counts, const std::set<cloud::Config>& valid,
            Rng& rng) {
  for (int guard = 0; guard < 64; ++guard) {
    if (valid.count(cloud::Config(counts)) > 0) return true;
    // Decrement a random non-zero coordinate.
    std::vector<std::size_t> nonzero;
    for (std::size_t d = 0; d < counts.size(); ++d) {
      if (counts[d] > 0) nonzero.push_back(d);
    }
    if (nonzero.empty()) return false;
    const std::size_t d = nonzero[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(nonzero.size()) - 1))];
    --counts[d];
  }
  return false;
}

}  // namespace

SearchResult GeneticSearch(const std::vector<cloud::Config>& configs,
                           const EvalFn& eval, const SearchOptions& options,
                           const GeneticOptions& ga) {
  CountingEvaluator evaluator(eval);
  CandidatePool pool(configs);
  std::set<cloud::Config> valid(configs.begin(), configs.end());
  Rng rng(options.seed);

  const std::size_t dims = configs.empty() ? 0 : configs[0].NumTypes();
  if (dims == 0) return evaluator.ToResult();

  auto evaluate = [&](const cloud::Config& c) -> double {
    const double qps = evaluator(c);
    pool.Remove(c);
    if (options.subconfig_pruning) pool.RemoveSubConfigsOf(c);
    return qps;
  };
  auto done = [&] {
    return pool.empty() || evaluator.evals() >= options.max_evals ||
           (options.target_qps > 0.0 &&
            evaluator.best_qps() >= options.target_qps);
  };

  // Initial population: random feasible candidates.
  std::vector<cloud::Config> population;
  std::vector<double> fitness;
  {
    std::vector<cloud::Config> shuffled = configs;
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    for (std::size_t i = 0; i < std::min(ga.population, shuffled.size());
         ++i) {
      population.push_back(shuffled[i]);
      fitness.push_back(evaluate(shuffled[i]));
      if (done()) return evaluator.ToResult();
    }
  }

  auto tournament_pick = [&]() -> const cloud::Config& {
    std::size_t best = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(population.size()) - 1));
    for (std::size_t k = 1; k < ga.tournament; ++k) {
      const std::size_t cand = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(population.size()) - 1));
      if (fitness[cand] > fitness[best]) best = cand;
    }
    return population[best];
  };

  for (std::size_t gen = 0; gen < ga.generations && !done(); ++gen) {
    std::vector<cloud::Config> next_pop;
    std::vector<double> next_fit;
    while (next_pop.size() < ga.population && !done()) {
      const cloud::Config& a = tournament_pick();
      const cloud::Config& b = tournament_pick();
      std::vector<int> child(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        const bool from_a =
            rng.Bernoulli(ga.crossover_rate) ? rng.Bernoulli(0.5) : true;
        child[d] = (from_a ? a : b).counts()[d];
      }
      if (rng.Bernoulli(ga.mutation_rate)) {
        const std::size_t d = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(dims) - 1));
        child[d] = std::max(0, child[d] + (rng.Bernoulli(0.5) ? 1 : -1));
      }
      if (!Repair(child, valid, rng)) continue;
      const cloud::Config config(child);
      const double qps = evaluate(config);
      next_pop.push_back(config);
      next_fit.push_back(qps);
    }
    if (next_pop.empty()) break;
    population = std::move(next_pop);
    fitness = std::move(next_fit);
  }
  return evaluator.ToResult();
}

}  // namespace kairos::search
