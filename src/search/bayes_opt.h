// Bayesian-optimization configuration search — the Ribbon allocation
// strategy (Sec. 7): GP surrogate over the normalized instance-count
// lattice, expected-improvement acquisition, and (in Fig. 11's augmented
// comparison) the same sub-configuration pruning Kairos+ uses.
#pragma once

#include "search/gp.h"
#include "search/search.h"

namespace kairos::search {

/// BO-specific knobs.
struct BayesOptOptions {
  std::size_t initial_design = 5;  ///< random seed evaluations
  GpOptions gp;
};

SearchResult BayesOptSearch(const std::vector<cloud::Config>& configs,
                            const EvalFn& eval,
                            const SearchOptions& options = {},
                            const BayesOptOptions& bo = {});

}  // namespace kairos::search
