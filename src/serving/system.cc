#include "serving/system.h"

#include <stdexcept>

#include "serving/engine.h"

namespace kairos::serving {

ServingSystem::ServingSystem(SystemSpec spec,
                             std::unique_ptr<policy::Policy> policy,
                             PredictorOptions predictor_options,
                             RunOptions run_options)
    : spec_(std::move(spec)),
      policy_(std::move(policy)),
      predictor_options_(predictor_options),
      run_options_(run_options) {
  if (spec_.catalog == nullptr || spec_.truth == nullptr) {
    throw std::invalid_argument("ServingSystem: catalog/truth required");
  }
  if (spec_.config.NumTypes() != spec_.catalog->size()) {
    throw std::invalid_argument("ServingSystem: config/catalog arity mismatch");
  }
  if (policy_ == nullptr) {
    throw std::invalid_argument("ServingSystem: policy required");
  }
}

RunResult ServingSystem::Run(const workload::Trace& trace) {
  if (spec_.config.TotalInstances() == 0) {
    throw std::logic_error("ServingSystem::Run: empty configuration");
  }
  // Batch semantics = submit everything upfront, then drain. Arrivals are
  // scheduled in trace order before any event fires, exactly as the
  // pre-engine implementation did, so results are bit-identical.
  EngineOptions options;
  options.run = run_options_;
  Engine engine(spec_, policy_.get(), predictor_options_, options);
  for (const workload::Query& q : trace.queries()) {
    const Status status = engine.Submit(q);
    if (!status.ok()) {
      throw std::invalid_argument("ServingSystem::Run: " + status.message());
    }
  }
  engine.Drain();
  return engine.Totals();
}

}  // namespace kairos::serving
