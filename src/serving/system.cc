#include "serving/system.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/stats.h"

namespace kairos::serving {

ServingSystem::ServingSystem(SystemSpec spec,
                             std::unique_ptr<policy::Policy> policy,
                             PredictorOptions predictor_options,
                             RunOptions run_options)
    : spec_(std::move(spec)),
      policy_(std::move(policy)),
      predictor_options_(predictor_options),
      run_options_(run_options) {
  if (spec_.catalog == nullptr || spec_.truth == nullptr) {
    throw std::invalid_argument("ServingSystem: catalog/truth required");
  }
  if (spec_.config.NumTypes() != spec_.catalog->size()) {
    throw std::invalid_argument("ServingSystem: config/catalog arity mismatch");
  }
  if (policy_ == nullptr) {
    throw std::invalid_argument("ServingSystem: policy required");
  }
}

void ServingSystem::Reset() {
  sim_ = sim::Simulator();
  predictor_ = std::make_unique<LatencyPredictor>(*spec_.catalog, *spec_.truth,
                                                  predictor_options_);
  instances_.clear();
  // Lay out base-type instances first: several FCFS baselines resolve ties
  // by instance order, which realizes their documented base-type preference.
  const cloud::TypeId base = spec_.catalog->BaseType();
  auto add_instances = [this](cloud::TypeId type, int count) {
    for (int k = 0; k < count; ++k) {
      Instance inst;
      inst.type = type;
      instances_.push_back(std::move(inst));
    }
  };
  add_instances(base, spec_.config.Count(base));
  for (cloud::TypeId t = 0; t < spec_.catalog->size(); ++t) {
    if (t != base) add_instances(t, spec_.config.Count(t));
  }
  waiting_.clear();
  result_ = RunResult{};
  result_.per_type_busy.assign(spec_.catalog->size(), 0.0);
  result_.per_type_served.assign(spec_.catalog->size(), 0);
  qos_sec_ = MsToSec(spec_.qos_ms);
  abort_requested_ = false;
  policy_->Reset();
}

RunResult ServingSystem::Run(const workload::Trace& trace) {
  Reset();
  if (instances_.empty()) {
    throw std::logic_error("ServingSystem::Run: empty configuration");
  }
  result_.offered = trace.size();
  for (const workload::Query& q : trace.queries()) {
    sim_.At(q.arrival, [this, q] { OnArrival(q); });
  }
  while (!abort_requested_ && sim_.Step()) {
  }
  result_.aborted = abort_requested_;

  if (!result_.latencies_ms.empty()) {
    result_.p99_ms = Percentile(result_.latencies_ms, 99.0);
    result_.mean_ms = Mean(result_.latencies_ms);
  }
  if (result_.makespan > 0.0) {
    result_.throughput_qps =
        static_cast<double>(result_.served) / result_.makespan;
  }
  return result_;
}

void ServingSystem::OnArrival(const workload::Query& q) {
  waiting_.push_back(q);
  RunRound();
}

std::vector<InstanceView> ServingSystem::SnapshotInstances() const {
  std::vector<InstanceView> views;
  views.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    InstanceView v;
    v.type = inst.type;
    Time avail = inst.executing ? inst.current_finish : sim_.Now();
    for (const workload::Query& q : inst.fifo) {
      avail += MsToSec(predictor_->PredictMsNoiseless(inst.type, q.batch_size));
    }
    v.available_at = avail;
    v.idle = !inst.executing && inst.fifo.empty();
    v.backlog = inst.fifo.size();
    views.push_back(v);
  }
  return views;
}

void ServingSystem::RunRound() {
  if (abort_requested_ || waiting_.empty()) return;

  const std::size_t window =
      std::min(waiting_.size(), run_options_.matcher_window);
  std::vector<workload::Query> prefix(waiting_.begin(),
                                      waiting_.begin() +
                                          static_cast<std::ptrdiff_t>(window));
  const std::vector<InstanceView> views = SnapshotInstances();

  policy::RoundContext ctx;
  ctx.now = sim_.Now();
  ctx.qos_sec = qos_sec_;
  ctx.waiting = prefix;
  ctx.instances = views;
  ctx.predictor = predictor_.get();
  ctx.catalog = spec_.catalog;

  const std::vector<policy::Assignment> proposed = policy_->Distribute(ctx);

  // Validate indices. Queries are one-to-one; instances are one-to-one for
  // late-binding policies (Eq. 6), while early-binding policies may stack
  // several commitments onto one instance's FIFO in a single round.
  const bool early = policy_->EarlyBinding();
  std::vector<bool> q_used(window, false), i_used(instances_.size(), false);
  for (const policy::Assignment& a : proposed) {
    if (a.waiting_idx >= window || a.instance_idx >= instances_.size() ||
        q_used[a.waiting_idx] || (!early && i_used[a.instance_idx])) {
      throw std::logic_error("Policy returned an invalid assignment set");
    }
    q_used[a.waiting_idx] = true;
    i_used[a.instance_idx] = true;
  }
  std::vector<bool> remove(window, false);
  for (const policy::Assignment& a : proposed) {
    Instance& inst = instances_[a.instance_idx];
    const workload::Query& q = prefix[a.waiting_idx];
    const bool idle = !inst.executing && inst.fifo.empty();
    if (idle) {
      BeginExecution(a.instance_idx, q);
      remove[a.waiting_idx] = true;
    } else if (early) {
      inst.fifo.push_back(q);
      remove[a.waiting_idx] = true;
    }
    // Late binding onto a busy instance: the pairing was tentative; the
    // query stays in the central queue for the next round.
  }

  std::deque<workload::Query> kept;
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    if (i < window && remove[i]) continue;
    kept.push_back(waiting_[i]);
  }
  waiting_ = std::move(kept);
}

void ServingSystem::BeginExecution(std::size_t instance_idx,
                                   const workload::Query& q) {
  Instance& inst = instances_[instance_idx];
  assert(!inst.executing);
  const Time start = sim_.Now();
  const Time actual = spec_.truth->Latency(inst.type, q.batch_size);
  inst.executing = true;
  inst.current_finish = start + actual;
  inst.busy_time += actual;
  sim_.At(inst.current_finish, [this, instance_idx, q, start] {
    OnCompletion(instance_idx, q, start);
  });
}

void ServingSystem::OnCompletion(std::size_t instance_idx, workload::Query q,
                                 Time start) {
  Instance& inst = instances_[instance_idx];
  const Time finish = sim_.Now();
  inst.executing = false;
  ++inst.served;

  const double latency_ms = SecToMs(finish - q.arrival);
  result_.latencies_ms.push_back(latency_ms);
  ++result_.served;
  result_.makespan = std::max(result_.makespan, finish);
  result_.per_type_busy[inst.type] += finish - start;
  ++result_.per_type_served[inst.type];
  if (latency_ms > spec_.qos_ms) ++result_.violations;
  if (run_options_.keep_records) {
    result_.records.push_back(ServedRecord{q.id, q.batch_size, inst.type,
                                           instance_idx, q.arrival, start,
                                           finish});
  }

  // Feed the online predictor with the *serving* latency (queueing time is
  // not part of the latency surface).
  predictor_->Observe(inst.type, q.batch_size, SecToMs(finish - start));

  if (run_options_.abort_violation_fraction > 0.0 && result_.offered > 0) {
    const double frac = static_cast<double>(result_.violations) /
                        static_cast<double>(result_.offered);
    if (frac > run_options_.abort_violation_fraction) {
      abort_requested_ = true;
      return;
    }
  }

  StartIfIdle(instance_idx);
  RunRound();
}

void ServingSystem::StartIfIdle(std::size_t instance_idx) {
  Instance& inst = instances_[instance_idx];
  if (!inst.executing && !inst.fifo.empty()) {
    const workload::Query next = inst.fifo.front();
    inst.fifo.pop_front();
    BeginExecution(instance_idx, next);
  }
}

}  // namespace kairos::serving
