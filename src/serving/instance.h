// Per-instance runtime state inside the serving simulator. Each allocated
// cloud instance hosts one model copy and serves exactly one query at a
// time (Sec. 6); queries committed ahead of time (early-binding policies
// like Clockwork) wait in the instance's FIFO.
#pragma once

#include <cstdint>

#include "cloud/instance_type.h"
#include "common/ring_deque.h"
#include "common/time.h"
#include "workload/query.h"

namespace kairos::serving {

/// Mutable state of one instance during a simulation run.
struct Instance {
  cloud::TypeId type = 0;

  /// Failure-domain label (rack / AZ) assigned at deploy time — round-robin
  /// over EngineOptions::failure_domains in append order. Pure metadata for
  /// correlated chaos (Engine::KillDomain): it never affects scheduling, so
  /// runs that configure domains but inject nothing stay bit-identical.
  std::size_t domain = 0;

  /// True while a query is executing right now.
  bool executing = false;

  /// Actual completion time of the executing query (valid when executing).
  Time current_finish = 0.0;

  // The executing query's identity and schedule, kept so a chaos hard
  // kill (Engine::KillInstances) can cancel the completion event, roll
  // back the unexecuted compute and requeue the query. All three are
  // valid only while `executing`.

  /// The query running right now.
  workload::Query current_query;

  /// Pure compute seconds of the executing query (current_finish minus
  /// network hops when a degraded fabric is installed).
  Time current_work = 0.0;

  /// Scheduled completion event (safe to Cancel after it fired).
  std::uint64_t completion_event = 0;

  /// Queries committed to this instance but not yet started (early
  /// binding). A RingDeque so steady-state commit/start churn touches no
  /// allocator (std::deque recycles node blocks through operator new).
  RingDeque<workload::Query> fifo;

  /// Cumulative busy seconds (for utilization reporting).
  double busy_time = 0.0;

  /// Number of queries completed on this instance.
  std::size_t served = 0;

  // Lifecycle under Engine::Reconfigure (DESIGN.md Sec. 8). Batch runs
  // never set these: every instance is live for the whole run.

  /// Torn down by a reconfiguration: receives no new assignments, drains
  /// its committed work, then retires. Irrevocable.
  bool retiring = false;

  /// Fully offline (drained after retiring). Stays in the instance vector
  /// so indices captured by in-flight completion events remain valid.
  bool retired = false;
};

/// Immutable per-round snapshot handed to distribution policies.
struct InstanceView {
  cloud::TypeId type = 0;
  /// Estimated time when the instance has drained all committed work; equals
  /// `now` for an idle instance.
  Time available_at = 0.0;
  /// Idle right now (no executing query and empty FIFO).
  bool idle = true;
  /// Queries already committed but not started (FIFO depth).
  std::size_t backlog = 0;
};

/// One completed query, for post-run analysis.
struct ServedRecord {
  workload::QueryId id = 0;
  int batch = 0;
  cloud::TypeId type = 0;
  std::size_t instance = 0;
  Time arrival = 0.0;
  Time start = 0.0;
  Time finish = 0.0;

  double LatencyMs() const { return SecToMs(finish - arrival); }
};

}  // namespace kairos::serving
