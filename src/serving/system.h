// The batch serving-system entry point: a heterogeneous pool of instances,
// a central query queue, and a pluggable distribution policy, driven by the
// discrete-event engine. This is the experimental substrate standing in
// for the paper's EC2 + gRPC deployment (DESIGN.md Sec. 1).
//
// Since the streaming redesign (DESIGN.md Sec. 8), ServingSystem is a thin
// compatibility shim: Run() submits the whole trace to a fresh
// serving::Engine and drains it, which reproduces the historical batch
// semantics bit for bit. Online callers — continuous arrivals, windowed
// metrics, mid-run mutation — should use serving::Engine directly.
//
// Event flow per run:
//   arrival  -> enqueue -> policy round -> dispatch/commit
//   complete -> record latency, observe predictor -> policy round
#pragma once

#include <memory>
#include <vector>

#include "cloud/config.h"
#include "cloud/instance_type.h"
#include "latency/latency_model.h"
#include "policy/policy.h"
#include "serving/instance.h"
#include "serving/latency_predictor.h"
#include "workload/trace.h"

namespace kairos::serving {

/// Immutable description of what is being simulated.
struct SystemSpec {
  const cloud::Catalog* catalog = nullptr;
  cloud::Config config;
  /// Ground-truth latency surface (actual execution times).
  const latency::LatencyModel* truth = nullptr;
  double qos_ms = 0.0;
};

/// Simulation-run knobs.
struct RunOptions {
  /// Abort the run once this fraction of offered queries has violated QoS
  /// (the run can no longer pass a p99 check; saves time in overload
  /// trials). 0 disables early abort.
  double abort_violation_fraction = 0.05;

  /// At most this many waiting queries are handed to the policy per round
  /// (FIFO prefix). Bounds matcher cost under extreme overload without
  /// affecting ordering fairness.
  std::size_t matcher_window = 64;

  /// Keep per-query ServedRecords (costs memory on huge traces).
  bool keep_records = false;

  /// Keep the cumulative per-completion latency vector that backs
  /// Totals()'s p99/mean. Sustained-throughput runs (10M+ queries) turn
  /// this off to hold peak RSS flat: the mean stays exact (running sum)
  /// but the cumulative p99 reads 0 — read per-window p99 from
  /// TakeWindow() instead, which is unaffected.
  bool keep_latencies = true;
};

/// Results of one simulation run.
struct RunResult {
  std::size_t offered = 0;      ///< queries in the trace
  std::size_t served = 0;       ///< completed before the run ended
  std::size_t violations = 0;   ///< served with latency > QoS
  /// Arrivals turned away at admission (bounded queue full); 0 unless
  /// AdmissionOptions is in play. Rejected queries count in `offered`.
  std::size_t rejected = 0;
  /// Queued queries dropped by deadline shedding; 0 unless enabled.
  std::size_t shed = 0;
  bool aborted = false;         ///< early-aborted due to violation overflow

  double p99_ms = 0.0;          ///< 99th-percentile end-to-end latency
  double mean_ms = 0.0;
  Time makespan = 0.0;          ///< last completion time
  /// served / makespan; 0 (never NaN) when nothing completed — an empty
  /// trace or a run whose every query was still queued at abort time.
  double throughput_qps = 0.0;

  /// True when the run can claim "allowable" status: a non-empty offered
  /// load, everything served, and the p99 within QoS. A zero-offered run
  /// never qualifies — it demonstrated nothing.
  bool QosMet(double qos_ms) const {
    return !aborted && offered > 0 && served == offered && p99_ms <= qos_ms;
  }

  std::vector<double> latencies_ms;     ///< per served query
  std::vector<ServedRecord> records;    ///< when RunOptions::keep_records
  std::vector<double> per_type_busy;    ///< busy seconds per TypeId
  std::vector<std::size_t> per_type_served;  ///< completions per TypeId
};

/// One simulated heterogeneous serving deployment (batch shim over
/// serving::Engine; see the file comment).
class ServingSystem {
 public:
  /// The spec's catalog/truth must outlive the system.
  ServingSystem(SystemSpec spec, std::unique_ptr<policy::Policy> policy,
                PredictorOptions predictor_options = {},
                RunOptions run_options = {});

  /// Simulates serving the trace to completion (or early abort) on a fresh
  /// engine, so a system can be reused across runs.
  RunResult Run(const workload::Trace& trace);

  const policy::Policy& GetPolicy() const { return *policy_; }
  const SystemSpec& spec() const { return spec_; }

 private:
  SystemSpec spec_;
  std::unique_ptr<policy::Policy> policy_;
  PredictorOptions predictor_options_;
  RunOptions run_options_;
};

}  // namespace kairos::serving
