// Allowable-throughput evaluation (Sec. 3/7): the maximum Poisson arrival
// rate a deployment sustains with its p99 latency inside the QoS target.
// Implemented as the paper describes — raise the rate until QoS breaks —
// via geometric bracketing plus bisection. Every rate trial replays the
// *same* batch-size sequence (retimed), so scheme comparisons are not
// polluted by sampling noise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cloud/config.h"
#include "serving/system.h"
#include "workload/batch_dist.h"

namespace kairos::serving {

/// Produces a fresh ServingSystem per rate trial.
using SystemFactory = std::function<std::unique_ptr<ServingSystem>()>;

/// Produces a fresh distribution policy (systems own their policy).
using PolicyFactory = std::function<std::unique_ptr<policy::Policy>()>;

/// Evaluator knobs. Defaults target bench-quality fidelity in seconds of
/// wall time; scale `queries` up for higher precision.
struct EvalOptions {
  std::size_t queries = 600;   ///< trace length per rate trial
  int bisect_iters = 7;        ///< bisection refinement steps
  double rate_guess = 20.0;    ///< initial bracket guess, queries/sec
  std::uint64_t seed = 42;     ///< trace generation seed
};

/// Outcome of a throughput evaluation.
struct EvalResult {
  double qps = 0.0;  ///< allowable throughput (max passing rate)
  int trials = 0;    ///< simulation runs spent (the paper's "evaluations"
                     ///< correspond to one EvalResult, not one trial)
};

/// Core evaluator over an arbitrary system factory.
EvalResult AllowableThroughput(const SystemFactory& factory,
                               const workload::BatchDistribution& mix,
                               double qos_ms, const EvalOptions& options);

/// Convenience evaluator for (catalog, config, model, policy) tuples — the
/// form every search algorithm and bench uses.
EvalResult EvaluateConfig(const cloud::Catalog& catalog,
                          const cloud::Config& config,
                          const latency::LatencyModel& truth, double qos_ms,
                          const PolicyFactory& policy_factory,
                          const workload::BatchDistribution& mix,
                          const EvalOptions& options,
                          PredictorOptions predictor_options = {},
                          RunOptions run_options = {});

}  // namespace kairos::serving
