#include "serving/throughput_eval.h"

#include <algorithm>

#include "common/rng.h"
#include "workload/arrival.h"
#include "workload/trace.h"

namespace kairos::serving {

EvalResult AllowableThroughput(const SystemFactory& factory,
                               const workload::BatchDistribution& mix,
                               double qos_ms, const EvalOptions& options) {
  Rng rng(options.seed);
  const workload::PoissonArrivals unit_rate(1.0);
  // The batch-size sequence is generated once per evaluation; every
  // bracketing/bisection trial below replays it retimed into one reused
  // scratch trace (no per-trial allocation — this is the hot inner loop of
  // every search evaluation).
  const workload::Trace base =
      workload::Trace::Generate(unit_rate, mix, options.queries, rng);
  workload::Trace trial;

  EvalResult result;
  auto passes = [&](double rate) {
    ++result.trials;
    base.RetimedInto(rate, &trial);
    const RunResult run = factory()->Run(trial);
    return run.QosMet(qos_ms);
  };

  // Bracket the failure boundary geometrically from the initial guess.
  double lo = 0.0;
  double hi = std::max(1e-3, options.rate_guess);
  if (passes(hi)) {
    for (int i = 0; i < 24; ++i) {
      lo = hi;
      hi *= 2.0;
      if (!passes(hi)) break;
      if (i == 23) return {hi, result.trials};  // absurdly high; give up
    }
  } else {
    bool found_passing = false;
    for (int i = 0; i < 24; ++i) {
      hi /= 2.0;
      if (passes(hi)) {
        lo = hi;
        hi *= 2.0;
        found_passing = true;
        break;
      }
      if (hi < 1e-3) break;
    }
    if (!found_passing) return {0.0, result.trials};  // cannot serve at all
  }

  // Bisect [lo passing, hi failing].
  for (int i = 0; i < options.bisect_iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (passes(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.qps = lo;
  return result;
}

EvalResult EvaluateConfig(const cloud::Catalog& catalog,
                          const cloud::Config& config,
                          const latency::LatencyModel& truth, double qos_ms,
                          const PolicyFactory& policy_factory,
                          const workload::BatchDistribution& mix,
                          const EvalOptions& options,
                          PredictorOptions predictor_options,
                          RunOptions run_options) {
  const SystemFactory factory = [&] {
    SystemSpec spec;
    spec.catalog = &catalog;
    spec.config = config;
    spec.truth = &truth;
    spec.qos_ms = qos_ms;
    return std::make_unique<ServingSystem>(spec, policy_factory(),
                                           predictor_options, run_options);
  };
  return AllowableThroughput(factory, mix, qos_ms, options);
}

}  // namespace kairos::serving
