#include "serving/latency_predictor.h"

#include <algorithm>

namespace kairos::serving {

LatencyPredictor::LatencyPredictor(const cloud::Catalog& catalog,
                                   const latency::LatencyModel& truth,
                                   PredictorOptions options)
    : per_type_(catalog.size()),
      noise_(options.noise_sigma, Rng(options.noise_seed)) {
  if (options.pretrained) {
    // Seed the regression with two exact points per type: the converged
    // predictor the paper's steady state reaches.
    for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
      Observe(t, 1, truth.LatencyMs(t, 1));
      Observe(t, latency::kMaxBatchSize,
              truth.LatencyMs(t, latency::kMaxBatchSize));
    }
  }
}

double LatencyPredictor::RawPredict(const TypeState& st, int batch) const {
  const int b = std::clamp(batch, 1, int{latency::kMaxBatchSize});
  // Lookup table first: exact repeats dominate in steady state.
  if (!st.samples.empty() && st.samples[static_cast<std::size_t>(b)] > 0) {
    return st.mean_ms[static_cast<std::size_t>(b)];
  }
  if (st.distinct_batches >= 2) {
    const double n = static_cast<double>(st.n);
    const double denom = n * st.sxx - st.sx * st.sx;
    if (denom > 0.0) {
      const double k = (n * st.sxy - st.sx * st.sy) / denom;
      const double a = (st.sy - k * st.sx) / n;
      return std::max(0.0, a + k * b);
    }
  }
  if (st.n >= 1) {
    // One distinct batch observed: scale proportionally (crude but only
    // used for the first few queries of a cold start).
    const double mean_y = st.sy / static_cast<double>(st.n);
    const double mean_x = st.sx / static_cast<double>(st.n);
    return mean_y * static_cast<double>(b) / std::max(1.0, mean_x);
  }
  // Nothing observed: an optimistic prior that encourages exploration.
  return 0.1;
}

double LatencyPredictor::PredictMs(cloud::TypeId type, int batch) {
  return noise_.Apply(RawPredict(per_type_.at(type), batch));
}

double LatencyPredictor::PredictMsNoiseless(cloud::TypeId type,
                                            int batch) const {
  return RawPredict(per_type_.at(type), batch);
}

void LatencyPredictor::PredictMsNoiselessBatch(cloud::TypeId type,
                                               const std::vector<int>& batches,
                                               std::vector<double>& out) const {
  const TypeState& st = per_type_.at(type);
  out.resize(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    out[i] = RawPredict(st, batches[i]);
  }
}

void LatencyPredictor::Observe(cloud::TypeId type, int batch,
                               double latency_ms) {
  TypeState& st = per_type_.at(type);
  const int b = std::clamp(batch, 1, int{latency::kMaxBatchSize});
  if (st.samples.empty()) {
    // Allocated on first observation so idle types stay at zero footprint.
    st.mean_ms.assign(latency::kMaxBatchSize + 1, 0.0);
    st.samples.assign(latency::kMaxBatchSize + 1, 0);
  }
  const auto bi = static_cast<std::size_t>(b);
  if (st.samples[bi] == 0) {
    st.mean_ms[bi] = latency_ms;
    st.samples[bi] = 1;
    ++st.distinct_batches;
  } else {
    ++st.samples[bi];
    st.mean_ms[bi] +=
        (latency_ms - st.mean_ms[bi]) / static_cast<double>(st.samples[bi]);
  }
  ++st.n;
  st.sx += b;
  st.sy += latency_ms;
  st.sxx += static_cast<double>(b) * b;
  st.sxy += static_cast<double>(b) * latency_ms;
}

bool LatencyPredictor::HasLinearFit(cloud::TypeId type) const {
  return per_type_.at(type).distinct_batches >= 2;
}

std::size_t LatencyPredictor::ObservationCount(cloud::TypeId type) const {
  return per_type_.at(type).n;
}

}  // namespace kairos::serving
