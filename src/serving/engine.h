// The streaming serving engine (DESIGN.md Sec. 8): an *online* view of
// the serving simulator. Where ServingSystem::Run consumes a whole trace
// and returns one RunResult, an Engine owns a running deployment whose
// lifetime the caller controls:
//
//   * queries arrive continuously — programmatic Submit() or attached
//     QuerySources pulled lazily, one emission ahead;
//   * time advances on demand — AdvanceTo(t) / Drain();
//   * metrics are read incrementally — TakeWindow() snapshots;
//   * the deployment mutates mid-run — SetArrivalScale() stretches
//     source gaps, SwapPolicy() replaces the distribution scheme, and
//     Reconfigure() moves to a new instance configuration with a modeled
//     launch lag (new instances come online late; removed instances
//     drain their committed work, then retire).
//
// State machine: SERVING --Drain()--> DRAINING --backlog empty--> DRAINED
// (an early abort also lands in DRAINED). Mutations and submissions are
// only accepted while SERVING.
//
// Several engines may shard one sim::Simulator (the shared-clock
// constructor): Fleet::ServeAll co-simulates every model of a fleet on
// one event loop this way. The batch entry points — ServingSystem::Run,
// Runtime::Serve — are thin shims over this class and reproduce their
// pre-engine results bit for bit (tests/engine_test.cc).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ring_deque.h"
#include "common/rng.h"
#include "common/status.h"
#include "policy/registry.h"
#include "serving/system.h"
#include "sim/simulator.h"
#include "workload/query_source.h"

namespace kairos::workload {
class QueryMonitor;  // workload/monitor.h — the live-mix tap target
}  // namespace kairos::workload

namespace kairos::rpc {
class NetworkModel;  // rpc/netem.h — the chaos-installable fabric
}  // namespace kairos::rpc

namespace kairos::telemetry {
struct EngineInstruments;  // telemetry/telemetry.h — metric/span handles
}  // namespace kairos::telemetry

namespace kairos::serving {

/// Engine lifecycle states (DESIGN.md Sec. 8).
enum class EngineState {
  kServing,   ///< accepting submissions and mutations
  kDraining,  ///< intake closed; finishing the backlog
  kDrained,   ///< backlog empty (or run aborted); terminal
};

/// Human-readable state name ("SERVING", ...).
const char* EngineStateName(EngineState state);

/// Service metrics aggregated over one observation window — the slice of
/// simulated time between two TakeWindow() calls.
struct WindowedMetrics {
  Time start = 0.0;            ///< window opening time (seconds)
  Time end = 0.0;              ///< window closing time (seconds)
  std::size_t offered = 0;     ///< arrivals inside the window
  std::size_t served = 0;      ///< completions inside the window
  std::size_t violations = 0;  ///< completions with latency > QoS
  /// Arrivals turned away by the bounded admission queue this window.
  /// Rejected arrivals still count in `offered` (they did arrive).
  std::size_t rejected = 0;
  /// Queued queries dropped by deadline shedding this window.
  std::size_t shed = 0;
  double p99_ms = 0.0;         ///< p99 latency of the window's completions
  double mean_ms = 0.0;        ///< mean latency of the window's completions
  double offered_qps = 0.0;    ///< offered / (end - start)
  double qps = 0.0;            ///< served / (end - start)
  /// Mean batch size of the window's *arrivals* (0 when none): the batch-
  /// mix signal drift-aware controllers compare against the planning-time
  /// monitor snapshot.
  double mean_batch = 0.0;
  /// rejected / offered and shed / offered (0 when the window had no
  /// arrivals) — reported next to p99 so benches can gate on "QoS met at
  /// X% shed" honestly (DESIGN.md Sec. 12).
  double reject_rate = 0.0;
  double shed_rate = 0.0;
  /// Central-queue depth sampled after each arrival's admission decision:
  /// the window's max and arrival-weighted mean (0 when no arrivals).
  /// This is the backlog-pressure signal the SHED controller and the
  /// telemetry queue-depth gauge read, instead of re-deriving it from
  /// Backlog() (which also counts committed and executing queries).
  std::size_t queue_depth_max = 0;
  double queue_depth_mean = 0.0;
};

/// Production admission-control and load-shedding knobs (DESIGN.md
/// Sec. 12). Everything defaults to 0 = disabled, and a fully-disabled
/// engine is bit-identical to a pre-admission build.
struct AdmissionOptions {
  /// Reject arrivals while the central queue already holds this many
  /// queries (0 = unbounded). Rejected queries count as offered and as
  /// rejected, are reported to the monitor tap, and never enter the queue.
  std::size_t max_queue = 0;

  /// Reject arrivals while the queued work — predicted fastest-type
  /// service seconds summed over the central queue, divided by the
  /// assignable-instance count — exceeds this many seconds (0 = off).
  /// An O(queue x instances) estimate evaluated per arrival; intended
  /// for moderate queue bounds, use max_queue for hard caps.
  double max_queue_s = 0.0;

  /// Shed queued queries that can no longer finish within deadline_s of
  /// their arrival even if started immediately on the fastest assignable
  /// type (0 = off). Shedding walks the FIFO head at each policy round
  /// and stops at the first feasible query, so it is deterministic and
  /// never reorders survivors. Committed (per-instance FIFO) queries are
  /// never shed.
  double deadline_s = 0.0;
};

/// Streaming-engine knobs.
struct EngineOptions {
  /// Abort / matcher-window / record-keeping knobs shared with batch runs.
  RunOptions run;
  /// Simulated seconds between Reconfigure() and new instances serving
  /// (cloud VM boot + model load). Teardown needs no lag: retiring
  /// instances stop taking work immediately and drain what they hold.
  double launch_lag_s = 0.0;
  /// Seed of the engine's RNG for QuerySource draws.
  std::uint64_t seed = 42;
  /// Admission/shedding behavior; all-zero (the default) disables it.
  AdmissionOptions admission;
  /// Number of failure domains (racks / AZs) instances are spread over at
  /// deploy time, round-robin in append order. Pure chaos metadata
  /// (DESIGN.md Sec. 11): 1 (the default, and the effective value for 0)
  /// puts everything in one domain and changes nothing else.
  std::size_t failure_domains = 1;
};

/// One online serving deployment, driven explicitly through simulated time.
class Engine {
 public:
  /// Owns the policy. Throws std::invalid_argument on a bad spec (null
  /// catalog/truth, arity mismatch, empty config, null policy); prefer
  /// Create() in code that wants Status-based errors. When `shared_clock`
  /// is non-null the engine schedules onto it (fleet co-simulation) and
  /// the caller drives that clock; the clock must outlive the engine.
  Engine(SystemSpec spec, std::unique_ptr<policy::Policy> policy,
         PredictorOptions predictor_options = {}, EngineOptions options = {},
         sim::Simulator* shared_clock = nullptr);

  /// Borrows the policy (the batch ServingSystem shim reuses its
  /// long-lived policy across runs); `policy` must outlive the engine.
  Engine(SystemSpec spec, policy::Policy* policy,
         PredictorOptions predictor_options = {}, EngineOptions options = {},
         sim::Simulator* shared_clock = nullptr);

  /// Status-returning construction: kInvalidArgument instead of throwing.
  static StatusOr<std::unique_ptr<Engine>> Create(
      SystemSpec spec, std::unique_ptr<policy::Policy> policy,
      PredictorOptions predictor_options = {}, EngineOptions options = {},
      sim::Simulator* shared_clock = nullptr);

  // Scheduled events capture `this`; the engine is pinned in memory.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time of the engine's clock.
  Time Now() const { return sim_->Now(); }

  EngineState state() const { return state_; }

  /// Enqueues one query for arrival at q.arrival (>= Now; equal-time
  /// ties fire in submission order). kFailedPrecondition once draining,
  /// kInvalidArgument for an arrival in the past.
  Status Submit(workload::Query q);

  /// Attaches a pull-based source: its first emission is scheduled now,
  /// each fired emission schedules the next (gaps divided by the current
  /// arrival scale). The source must outlive the engine (or its Drain()).
  /// Emitted queries get engine-assigned ids and join the `offered`
  /// ledger when they *arrive* (a scheduled-ahead emission that never
  /// fires is never counted); Submit()ted queries count at submission,
  /// preserving batch semantics. kFailedPrecondition once draining.
  Status SubmitSource(workload::QuerySource& source);

  /// Fires every event with time <= t, then moves the clock exactly to t
  /// (even when idle). Returns the number of events fired. On an engine
  /// sharing a clock this advances the *shared* loop — with
  /// Fleet::ServeAll, let the fleet drive instead.
  std::size_t AdvanceTo(Time t);

  /// Closes intake (detaches sources, rejects further Submits) and runs
  /// events until every query this engine accepted has completed.
  /// Returns the number of events fired. Unbounded sources are safe to
  /// drain: they are simply cut off. On a shared clock this advances the
  /// shared loop (co-simulated peers keep serving) exactly until this
  /// engine's own backlog is empty, then stops.
  std::size_t Drain();

  /// Stretches the gaps of every attached source by 1/scale from the
  /// next emission onward (2.0 = twice the arrival rate). Scale must be
  /// positive. Programmatic Submit() timestamps are not rescaled.
  Status SetArrivalScale(double scale);

  double arrival_scale() const { return arrival_scale_; }

  /// Replaces the distribution policy mid-run with a registry-built one
  /// (kNotFound for an unknown name, listing the alternatives). The new
  /// policy starts from Reset() state; queued queries are redistributed
  /// under it on the next round.
  Status SwapPolicy(const std::string& name,
                    const policy::KnobMap& knobs = {});

  /// Moves the deployment to `config` (same catalog arity, >= 1 instance
  /// in total). Per instance type, shrinking cancels launches still
  /// pending from an earlier reconfigure first, then marks the newest
  /// live instances retiring (idle ones retire on the spot; busy ones
  /// drain first); growth schedules launches that come online after
  /// EngineOptions::launch_lag_s. Launches the new target still wants
  /// keep their original schedule — re-issuing an unchanged target is a
  /// no-op, never a lag reset.
  Status Reconfigure(const cloud::Config& config);

  /// Metrics since the previous TakeWindow() (or since construction),
  /// closing the window at Now() and opening a fresh one. Deterministic:
  /// same seed + same submission/advance schedule => identical windows,
  /// regardless of how many AdvanceTo steps realized the schedule.
  WindowedMetrics TakeWindow();

  /// Cumulative results since construction, in batch RunResult form
  /// (p99/mean/throughput computed over every completion so far). The
  /// zero-offered edge cases report throughput_qps == 0 and never NaN.
  RunResult Totals() const;

  /// Queries in the offered ledger so far — arrived source emissions
  /// plus everything Submit()ted. Cheap, unlike Totals() (which copies
  /// per-completion vectors); periodic pollers should read this.
  std::size_t Offered() const { return totals_.offered; }

  /// Completions so far. Cheap, like Offered().
  std::size_t Served() const { return totals_.served; }

  /// Arrivals turned away at admission so far. Cheap, like Offered().
  std::size_t Rejected() const { return totals_.rejected; }

  /// Queued queries dropped by deadline shedding so far. Cheap.
  std::size_t Shed() const { return totals_.shed; }

  /// Backlog depth: queries accepted but not yet completed (rejected and
  /// shed queries left the system and do not count). For source-fed
  /// engines (emissions join the ledger on arrival) this is exactly the
  /// in-system population — central queue + per-instance FIFOs +
  /// executing — which is what backlog-autoscaling controllers read at
  /// every barrier. Programmatic Submit()s count from *submission*
  /// (batch semantics), so a trace scheduled ahead inflates this until
  /// its arrivals fire.
  std::size_t Backlog() const {
    return totals_.offered - totals_.served - totals_.rejected -
           totals_.shed;
  }

  /// Replaces the admission/shedding knobs mid-run (the SHED controller
  /// drives this at fleet barriers). A newly set or tightened deadline is
  /// applied to the queue at the next policy round. kInvalidArgument for
  /// negative knobs; kFailedPrecondition unless SERVING.
  Status SetAdmission(const AdmissionOptions& admission);

  const AdmissionOptions& admission() const { return options_.admission; }

  /// Attaches a sliding-window monitor fed one Observe() per arrival
  /// (batch sizes of the *live* stream, in arrival order). The monitor
  /// must outlive the engine; nullptr detaches. Used by the fleet
  /// control plane to compare the live batch mix against the planning-
  /// time snapshot and to re-plan after a monitor reset.
  void SetMonitorTap(workload::QueryMonitor* monitor) {
    monitor_tap_ = monitor;
  }

  /// Attaches telemetry instruments (telemetry/telemetry.h): counters on
  /// the arrival/shed/completion paths, a queue-depth gauge, and spans
  /// around AdvanceTo/Drain. The instruments (and the Telemetry backing
  /// them) must outlive the engine; nullptr (the default) detaches and
  /// restores the exact uninstrumented event stream — telemetry is a
  /// pure observer and never perturbs results (DESIGN.md Sec. 13).
  void SetTelemetry(const telemetry::EngineInstruments* instruments) {
    telemetry_ = instruments;
  }

  /// The configuration the engine is moving toward (pending launches
  /// included); equals the live configuration once they are online.
  const cloud::Config& target_config() const { return target_config_; }

  /// Live instances: launched, not retired (retiring-but-draining count).
  std::size_t ActiveInstances() const;

  /// Assignable instances: live and not retiring (the set policies see).
  std::size_t AssignableInstances() const;

  /// Launches scheduled but not yet online.
  std::size_t PendingInstances() const;

  // --- Chaos hooks (DESIGN.md Sec. 11). Fleet::ServeAll drives these at
  // barriers on the driving thread; kill events scheduled here fire on
  // this engine's own clock, inside its shard advance. A zero-chaos run
  // never calls them, and its event stream, RNG draws and results stay
  // bit-identical to pre-chaos builds (tests/chaos_test.cc).

  /// One chaos-induced capacity loss, in the order it happened.
  struct InstanceFault {
    Time time = 0.0;
    bool preemption = false;   ///< spot reclamation (vs abrupt death)
    std::size_t requeued = 0;  ///< queries pushed back to the central queue
  };

  /// Issues spot reclamation notices to the `count` newest assignable
  /// instances: each stops taking new work immediately (retiring) and is
  /// hard-killed `notice_s` seconds later unless it drained first. The
  /// last assignable instance is spared so a model never self-destructs
  /// to zero capacity. Returns the notices actually issued; no-op (0)
  /// unless SERVING.
  std::size_t PreemptInstances(std::size_t count, double notice_s);

  /// Hard-kills the `count` newest assignable instances right now: the
  /// executing query's completion is cancelled and it returns — with its
  /// FIFO — to the *front* of the central queue, original arrival stamps
  /// intact (the lost work is the preemption damage the latency tail
  /// shows). The last assignable instance is spared. Returns the kills
  /// applied; no-op (0) unless SERVING.
  std::size_t KillInstances(std::size_t count);

  /// Failure domains configured for this deployment (>= 1).
  std::size_t NumDomains() const;

  /// Correlated reclamation: issues spot notices to *every* assignable
  /// instance labelled `domain` (newest first), each retired immediately
  /// and hard-killed `notice_s` seconds later unless drained. When the
  /// domain holds every assignable instance, the oldest one is spared so
  /// the model never self-destructs to zero capacity. Returns the notices
  /// issued; no-op (0) unless SERVING or for an out-of-range domain.
  std::size_t PreemptDomain(std::size_t domain, double notice_s);

  /// Correlated abrupt loss: hard-kills every assignable instance in
  /// `domain` right now, sparing the oldest survivor as PreemptDomain
  /// does. Returns the kills applied; no-op (0) unless SERVING.
  std::size_t KillDomain(std::size_t domain);

  /// Installs `net` as the dispatcher<->instance fabric: every execution
  /// pays two sampled one-way hops (dispatch + reply) on top of compute.
  /// nullptr restores the pristine zero-delay fabric. Hop draws come from
  /// a dedicated RNG, so arrival and policy streams are untouched. `net`
  /// must outlive the engine or the next SetNetwork call.
  void SetNetwork(const rpc::NetworkModel* net) { network_ = net; }

  /// Chaos kill ledger in time order (reclamations and deaths; notices
  /// are counted separately). Fleet::ServeAll drains this at barriers.
  const std::vector<InstanceFault>& Faults() const { return faults_; }

  /// Faults().size(), for cheap telemetry polling.
  std::size_t InstancesLost() const { return faults_.size(); }

  /// Cumulative spot reclamation notices issued via PreemptInstances.
  std::size_t PreemptionNotices() const { return preemption_notices_; }

  /// Billed instance-seconds per catalog type up to Now(): every
  /// non-retired instance plus every pending launch bills — launching
  /// instances pay while they boot, exactly PlanReconfiguration's
  /// doctrine. Passive accounting: reading it never perturbs the run.
  std::vector<double> BilledSecondsPerType() const;

  const policy::Policy& GetPolicy() const { return *policy_; }
  const SystemSpec& spec() const { return spec_; }

 private:
  struct SourceState {
    workload::QuerySource* source = nullptr;
    sim::EventId pending = 0;   ///< the scheduled next-emission event
    bool open = false;          ///< still pulling
  };

  /// Shared constructor body; returns a Status instead of throwing.
  Status Init();

  /// Schedules source slot `slot`'s next emission, if any.
  void PullSource(std::size_t slot);

  void OnArrival(const workload::Query& q);

  /// Records the central-queue depth after an arrival's admission
  /// decision into the window stats and the telemetry gauge.
  void SampleQueueDepth();

  /// True when AdmissionOptions says this arrival must be turned away.
  bool AdmissionRejects() const;

  /// Predicted service seconds of `batch` on the fastest assignable
  /// type right now; 0 when nothing is assignable.
  double MinServiceSeconds(int batch) const;

  /// Drops doomed queries from the FIFO head (see
  /// AdmissionOptions::deadline_s); called at the top of every round.
  void ShedExpired();

  void RunRound();
  void StartIfIdle(std::size_t instance_idx);
  void BeginExecution(std::size_t instance_idx, const workload::Query& q);
  void OnCompletion(std::size_t instance_idx, workload::Query q, Time start);

  /// Views of the assignable instances; fills `view_to_instance_` with
  /// the matching instances_ indices. Returns a reference to reused
  /// per-round scratch, invalidated by the next call.
  const std::vector<InstanceView>& SnapshotInstances();

  /// Immediate kill of one instance: cancel + requeue + retire + log.
  /// No-op when the instance already retired (a preemption notice whose
  /// target drained in time).
  void HardKill(std::size_t instance_idx, bool preemption);

  /// Indices of the newest assignable instances, newest first, capped so
  /// at least one assignable instance survives.
  std::vector<std::size_t> NewestAssignable(std::size_t count) const;

  /// Assignable instances labelled `domain`, newest first, minus the
  /// fleet-wide oldest assignable instance when the domain would
  /// otherwise zero the model (the correlated-kill survivor rule).
  std::vector<std::size_t> DomainAssignable(std::size_t domain) const;

  /// Folds billed instance-seconds since the last census into
  /// billed_seconds_; called before every mutation of the billed set.
  void AccrueBilling();

  /// Appends one live instance of `type`.
  void AddInstance(cloud::TypeId type);

  /// Non-retired launched instances of `type`.
  std::size_t LiveCount(cloud::TypeId type) const;

  SystemSpec spec_;
  std::unique_ptr<policy::Policy> owned_policy_;
  policy::Policy* policy_ = nullptr;  ///< owned_policy_ or borrowed
  PredictorOptions predictor_options_;
  EngineOptions options_;

  sim::Simulator owned_sim_;
  sim::Simulator* sim_ = nullptr;  ///< owned_sim_ or the shared clock

  std::unique_ptr<LatencyPredictor> predictor_;
  std::vector<Instance> instances_;
  std::vector<std::size_t> view_to_instance_;  ///< scratch of SnapshotInstances
  RingDeque<workload::Query> waiting_;
  // Per-round scratch reused across rounds: at a sustained 10M-query
  // stream, RunRound runs millions of times and these high-water once.
  std::vector<InstanceView> round_views_;
  std::vector<workload::Query> round_prefix_;
  std::vector<policy::Assignment> round_assignments_;
  std::vector<char> round_q_used_, round_i_used_, round_remove_;
  std::vector<workload::Query> orphan_scratch_;
  std::vector<SourceState> sources_;
  /// Scheduled-but-not-yet-online instances; entries whose event already
  /// fired stay until the next reconfigure sweeps them (Cancel no-ops).
  struct PendingLaunch {
    sim::EventId id = 0;
    cloud::TypeId type = 0;
  };
  std::vector<PendingLaunch> pending_launches_;
  std::vector<std::size_t> pending_by_type_;  ///< live pending count per type
  cloud::Config target_config_;

  EngineState state_ = EngineState::kServing;
  workload::QueryMonitor* monitor_tap_ = nullptr;  ///< live-mix observer
  const telemetry::EngineInstruments* telemetry_ = nullptr;  ///< pure observer
  const rpc::NetworkModel* network_ = nullptr;     ///< chaos fabric; null = pristine
  Rng net_rng_;                        ///< hop draws only, never shared
  std::size_t domain_counter_ = 0;     ///< round-robin deploy placement
  std::vector<InstanceFault> faults_;  ///< chaos kills, time order
  std::size_t preemption_notices_ = 0;
  std::vector<double> billed_seconds_;  ///< per type, up to census_time_
  Time census_time_ = 0.0;
  Rng rng_;
  double arrival_scale_ = 1.0;
  workload::QueryId next_source_id_ = 1u << 20;  ///< clear of trace ids
  double qos_sec_ = 0.0;
  bool abort_requested_ = false;

  // Cumulative counters (RunResult shape) plus the open window.
  RunResult totals_;
  double latency_sum_ms_ = 0.0;  ///< running sum; exact mean without the vector
  Time window_start_ = 0.0;
  std::size_t window_offered_ = 0;
  std::size_t window_served_ = 0;
  std::size_t window_violations_ = 0;
  std::size_t window_rejected_ = 0;
  std::size_t window_shed_ = 0;
  double window_batch_sum_ = 0.0;  ///< sum of arrival batch sizes
  std::size_t window_queue_max_ = 0;   ///< max queue depth seen at arrivals
  double window_queue_sum_ = 0.0;      ///< sum of depths (mean = /offered)
  std::vector<double> window_latencies_ms_;
  std::vector<double> percentile_scratch_;  ///< TakeWindow p99 sort scratch
};

}  // namespace kairos::serving
