#include "serving/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/stats.h"
#include "rpc/netem.h"
#include "telemetry/telemetry.h"
#include "workload/monitor.h"

namespace kairos::serving {

const char* EngineStateName(EngineState state) {
  switch (state) {
    case EngineState::kServing: return "SERVING";
    case EngineState::kDraining: return "DRAINING";
    case EngineState::kDrained: return "DRAINED";
  }
  return "UNKNOWN";
}

Engine::Engine(SystemSpec spec, std::unique_ptr<policy::Policy> policy,
               PredictorOptions predictor_options, EngineOptions options,
               sim::Simulator* shared_clock)
    : spec_(std::move(spec)),
      owned_policy_(std::move(policy)),
      policy_(owned_policy_.get()),
      predictor_options_(predictor_options),
      options_(options),
      sim_(shared_clock != nullptr ? shared_clock : &owned_sim_),
      target_config_(spec_.config),
      rng_(options.seed) {
  const Status status = Init();
  if (!status.ok()) throw std::invalid_argument("Engine: " + status.message());
}

Engine::Engine(SystemSpec spec, policy::Policy* policy,
               PredictorOptions predictor_options, EngineOptions options,
               sim::Simulator* shared_clock)
    : spec_(std::move(spec)),
      policy_(policy),
      predictor_options_(predictor_options),
      options_(options),
      sim_(shared_clock != nullptr ? shared_clock : &owned_sim_),
      target_config_(spec_.config),
      rng_(options.seed) {
  const Status status = Init();
  if (!status.ok()) throw std::invalid_argument("Engine: " + status.message());
}

StatusOr<std::unique_ptr<Engine>> Engine::Create(
    SystemSpec spec, std::unique_ptr<policy::Policy> policy,
    PredictorOptions predictor_options, EngineOptions options,
    sim::Simulator* shared_clock) {
  if (spec.catalog == nullptr || spec.truth == nullptr) {
    return Status::InvalidArgument("engine needs a catalog and a truth model");
  }
  if (spec.config.NumTypes() != spec.catalog->size()) {
    return Status::InvalidArgument("config/catalog arity mismatch");
  }
  if (policy == nullptr) {
    return Status::InvalidArgument("engine needs a distribution policy");
  }
  if (spec.config.TotalInstances() == 0) {
    return Status::InvalidArgument("engine needs at least one instance");
  }
  return std::make_unique<Engine>(std::move(spec), std::move(policy),
                                  predictor_options, options, shared_clock);
}

Status Engine::Init() {
  if (spec_.catalog == nullptr || spec_.truth == nullptr) {
    return Status::InvalidArgument("catalog/truth required");
  }
  if (spec_.config.NumTypes() != spec_.catalog->size()) {
    return Status::InvalidArgument("config/catalog arity mismatch");
  }
  if (policy_ == nullptr) {
    return Status::InvalidArgument("policy required");
  }
  if (spec_.config.TotalInstances() == 0) {
    return Status::InvalidArgument("empty configuration");
  }
  predictor_ = std::make_unique<LatencyPredictor>(*spec_.catalog, *spec_.truth,
                                                  predictor_options_);
  // Lay out base-type instances first: several FCFS baselines resolve ties
  // by instance order, which realizes their documented base-type preference.
  const cloud::TypeId base = spec_.catalog->BaseType();
  for (int k = 0; k < spec_.config.Count(base); ++k) AddInstance(base);
  for (cloud::TypeId t = 0; t < spec_.catalog->size(); ++t) {
    if (t == base) continue;
    for (int k = 0; k < spec_.config.Count(t); ++k) AddInstance(t);
  }
  totals_.per_type_busy.assign(spec_.catalog->size(), 0.0);
  totals_.per_type_served.assign(spec_.catalog->size(), 0);
  pending_by_type_.assign(spec_.catalog->size(), 0);
  billed_seconds_.assign(spec_.catalog->size(), 0.0);
  census_time_ = sim_->Now();
  // Chaos network hops draw from their own stream: installing a degraded
  // fabric must not perturb the arrival/policy RNG, and a zero-chaos run
  // never touches this one.
  net_rng_ = Rng(options_.seed ^ 0x6E657477696E6AULL);
  qos_sec_ = MsToSec(spec_.qos_ms);
  window_start_ = sim_->Now();
  policy_->Reset();
  return Status::Ok();
}

void Engine::AddInstance(cloud::TypeId type) {
  Instance inst;
  inst.type = type;
  inst.domain = domain_counter_++ % NumDomains();
  instances_.push_back(std::move(inst));
}

std::size_t Engine::NumDomains() const {
  return std::max<std::size_t>(options_.failure_domains, 1);
}

std::size_t Engine::LiveCount(cloud::TypeId type) const {
  std::size_t live = 0;
  for (const Instance& inst : instances_) {
    if (inst.type == type && !inst.retired && !inst.retiring) ++live;
  }
  return live;
}

std::size_t Engine::ActiveInstances() const {
  std::size_t active = 0;
  for (const Instance& inst : instances_) {
    if (!inst.retired) ++active;
  }
  return active;
}

std::size_t Engine::AssignableInstances() const {
  std::size_t assignable = 0;
  for (const Instance& inst : instances_) {
    if (!inst.retired && !inst.retiring) ++assignable;
  }
  return assignable;
}

std::size_t Engine::PendingInstances() const {
  std::size_t pending = 0;
  for (const std::size_t count : pending_by_type_) pending += count;
  return pending;
}

void Engine::AccrueBilling() {
  const Time now = sim_->Now();
  if (now > census_time_) {
    const Time span = now - census_time_;
    for (cloud::TypeId t = 0; t < spec_.catalog->size(); ++t) {
      billed_seconds_[t] +=
          static_cast<double>(pending_by_type_[t]) * span;
    }
    for (const Instance& inst : instances_) {
      if (!inst.retired) billed_seconds_[inst.type] += span;
    }
  }
  census_time_ = now;
}

std::vector<double> Engine::BilledSecondsPerType() const {
  std::vector<double> billed = billed_seconds_;
  const Time now = sim_->Now();
  if (now > census_time_) {
    const Time span = now - census_time_;
    for (cloud::TypeId t = 0; t < spec_.catalog->size(); ++t) {
      billed[t] += static_cast<double>(pending_by_type_[t]) * span;
    }
    for (const Instance& inst : instances_) {
      if (!inst.retired) billed[inst.type] += span;
    }
  }
  return billed;
}

std::vector<std::size_t> Engine::NewestAssignable(std::size_t count) const {
  // Newest = highest index (instances_ grows append-only). The cap keeps
  // one assignable survivor so chaos can degrade a model, never zero it.
  const std::size_t assignable = AssignableInstances();
  if (assignable <= 1) return {};
  count = std::min(count, assignable - 1);
  std::vector<std::size_t> victims;
  for (std::size_t i = instances_.size(); i-- > 0 && victims.size() < count;) {
    const Instance& inst = instances_[i];
    if (!inst.retired && !inst.retiring) victims.push_back(i);
  }
  return victims;
}

std::size_t Engine::PreemptInstances(std::size_t count, double notice_s) {
  if (state_ != EngineState::kServing || count == 0) return 0;
  const std::vector<std::size_t> victims = NewestAssignable(count);
  for (const std::size_t idx : victims) {
    // The notice window: no new work from now (retiring drains what it
    // holds), hard reclaim at the deadline unless it drained first.
    instances_[idx].retiring = true;
    ++preemption_notices_;
    sim_->After(std::max(notice_s, 0.0),
                [this, idx] { HardKill(idx, /*preemption=*/true); });
  }
  return victims.size();
}

std::size_t Engine::KillInstances(std::size_t count) {
  if (state_ != EngineState::kServing || count == 0) return 0;
  const std::vector<std::size_t> victims = NewestAssignable(count);
  for (const std::size_t idx : victims) {
    HardKill(idx, /*preemption=*/false);
  }
  return victims.size();
}

std::vector<std::size_t> Engine::DomainAssignable(std::size_t domain) const {
  const std::size_t assignable = AssignableInstances();
  if (assignable <= 1 || domain >= NumDomains()) return {};
  std::vector<std::size_t> victims;
  for (std::size_t i = instances_.size(); i-- > 0;) {
    const Instance& inst = instances_[i];
    if (!inst.retired && !inst.retiring && inst.domain == domain) {
      victims.push_back(i);
    }
  }
  // Survivor rule: a domain that holds every assignable instance spares
  // the fleet-wide oldest one, mirroring NewestAssignable's cap.
  if (victims.size() == assignable) victims.pop_back();
  return victims;
}

std::size_t Engine::PreemptDomain(std::size_t domain, double notice_s) {
  if (state_ != EngineState::kServing) return 0;
  const std::vector<std::size_t> victims = DomainAssignable(domain);
  for (const std::size_t idx : victims) {
    instances_[idx].retiring = true;
    ++preemption_notices_;
    sim_->After(std::max(notice_s, 0.0),
                [this, idx] { HardKill(idx, /*preemption=*/true); });
  }
  return victims.size();
}

std::size_t Engine::KillDomain(std::size_t domain) {
  if (state_ != EngineState::kServing) return 0;
  const std::vector<std::size_t> victims = DomainAssignable(domain);
  for (const std::size_t idx : victims) {
    HardKill(idx, /*preemption=*/false);
  }
  return victims.size();
}

void Engine::HardKill(std::size_t instance_idx, bool preemption) {
  Instance& inst = instances_[instance_idx];
  if (inst.retired) return;  // drained inside the notice window
  AccrueBilling();           // billed until the reclaim, not a tick longer

  InstanceFault fault;
  fault.time = sim_->Now();
  fault.preemption = preemption;

  std::vector<workload::Query>& orphans = orphan_scratch_;
  orphans.clear();
  if (inst.executing) {
    sim_->Cancel(inst.completion_event);
    // The interrupted query's remaining compute never happened.
    inst.busy_time -= std::min(
        inst.current_work, std::max(0.0, inst.current_finish - sim_->Now()));
    inst.executing = false;
    orphans.push_back(inst.current_query);
  }
  for (const workload::Query& q : inst.fifo) orphans.push_back(q);
  inst.fifo.clear();
  fault.requeued = orphans.size();
  // Orphans re-enter at the *front* of the central queue in their
  // original order: they arrived before anything queued behind them, and
  // their original arrival stamps carry the preemption damage into the
  // latency tail.
  for (std::size_t i = orphans.size(); i-- > 0;) {
    waiting_.push_front(orphans[i]);
  }

  inst.retiring = false;
  inst.retired = true;
  faults_.push_back(fault);
  // Survivors absorb the requeued work right away.
  RunRound();
}

Status Engine::Submit(workload::Query q) {
  if (state_ != EngineState::kServing) {
    return Status::FailedPrecondition(
        std::string("engine is ") + EngineStateName(state_) +
        "; submissions are only accepted while SERVING");
  }
  if (q.arrival < sim_->Now()) {
    return Status::InvalidArgument(
        "query arrival " + std::to_string(q.arrival) +
        "s is in the past (now " + std::to_string(sim_->Now()) + "s)");
  }
  ++totals_.offered;
  if (telemetry_ != nullptr) {
    telemetry_->tracer->EmitInstant(
        telemetry_->shard, "engine.submit",
        {{"arrival_s", std::to_string(q.arrival)},
         {"batch", std::to_string(q.batch_size)}});
  }
  sim_->At(q.arrival, [this, q] { OnArrival(q); });
  return Status::Ok();
}

Status Engine::SubmitSource(workload::QuerySource& source) {
  if (state_ != EngineState::kServing) {
    return Status::FailedPrecondition(
        std::string("engine is ") + EngineStateName(state_) +
        "; sources are only accepted while SERVING");
  }
  sources_.push_back(SourceState{&source, /*pending=*/0, /*open=*/true});
  PullSource(sources_.size() - 1);
  return Status::Ok();
}

void Engine::PullSource(std::size_t slot) {
  SourceState& state = sources_[slot];
  if (!state.open || abort_requested_) return;
  const std::optional<workload::Emission> emission =
      state.source->Next(rng_);
  if (!emission.has_value()) {
    state.open = false;
    return;
  }
  const workload::Query q{next_source_id_++, emission->batch,
                          sim_->Now() + emission->gap / arrival_scale_};
  // Source queries join the offered ledger on *arrival*: the one
  // scheduled-ahead emission must not inflate an undrained engine's
  // Totals() (Fleet::ServeAll reads them mid-flight).
  state.pending = sim_->At(q.arrival, [this, slot, q] {
    ++totals_.offered;
    OnArrival(q);
    PullSource(slot);
  });
}

std::size_t Engine::AdvanceTo(Time t) {
  const std::uint64_t wall_start_us =
      telemetry_ != nullptr ? telemetry_->tracer->NowUs() : 0;
  std::size_t fired = 0;
  while (!abort_requested_ && !sim_->Idle() && sim_->NextEventTime() <= t) {
    sim_->Step();
    ++fired;
  }
  if (!abort_requested_) sim_->FastForward(t);
  if (state_ == EngineState::kDraining && sim_->Idle()) {
    state_ = EngineState::kDrained;
  }
  if (telemetry_ != nullptr) {
    const std::uint64_t wall_us =
        telemetry_->tracer->NowUs() - wall_start_us;
    telemetry_->metrics->Observe(telemetry_->advance_wall_us,
                                 telemetry_->shard,
                                 static_cast<double>(wall_us));
    telemetry_->tracer->EmitSpan(
        telemetry_->shard, "engine.advance", wall_start_us, wall_us,
        {{"fired", std::to_string(fired)}, {"to_s", std::to_string(t)}});
  }
  return fired;
}

std::size_t Engine::Drain() {
  if (state_ == EngineState::kDrained) return 0;
  if (state_ == EngineState::kServing) {
    state_ = EngineState::kDraining;
    for (SourceState& source : sources_) {
      if (source.open) {
        // The cancelled emission was never counted (sources count on
        // arrival), so no offered bookkeeping is needed.
        sim_->Cancel(source.pending);
        source.open = false;
      }
    }
  }
  // Run until everything this engine accepted has completed — not until
  // the clock idles: a shared clock may carry co-simulated peers' events
  // (including unbounded source chains) forever. Rejected and shed
  // queries already left the system and will never complete.
  const std::uint64_t wall_start_us =
      telemetry_ != nullptr ? telemetry_->tracer->NowUs() : 0;
  std::size_t fired = 0;
  while (!abort_requested_ &&
         totals_.served + totals_.rejected + totals_.shed <
             totals_.offered &&
         sim_->Step()) {
    ++fired;
  }
  state_ = EngineState::kDrained;
  if (telemetry_ != nullptr) {
    const std::uint64_t wall_us =
        telemetry_->tracer->NowUs() - wall_start_us;
    telemetry_->metrics->Observe(telemetry_->advance_wall_us,
                                 telemetry_->shard,
                                 static_cast<double>(wall_us));
    telemetry_->tracer->EmitSpan(telemetry_->shard, "engine.drain",
                                 wall_start_us, wall_us,
                                 {{"fired", std::to_string(fired)}});
  }
  return fired;
}

Status Engine::SetAdmission(const AdmissionOptions& admission) {
  if (state_ != EngineState::kServing) {
    return Status::FailedPrecondition(
        std::string("engine is ") + EngineStateName(state_) +
        "; mutations are only accepted while SERVING");
  }
  if (admission.max_queue_s < 0.0 || admission.deadline_s < 0.0) {
    return Status::InvalidArgument(
        "admission knobs must be non-negative (max_queue_s " +
        std::to_string(admission.max_queue_s) + ", deadline_s " +
        std::to_string(admission.deadline_s) + ")");
  }
  options_.admission = admission;
  // A newly set (or tightened) deadline takes effect on the current
  // queue right away rather than waiting for the next arrival.
  RunRound();
  return Status::Ok();
}

Status Engine::SetArrivalScale(double scale) {
  if (state_ != EngineState::kServing) {
    return Status::FailedPrecondition(
        std::string("engine is ") + EngineStateName(state_) +
        "; mutations are only accepted while SERVING");
  }
  if (scale <= 0.0) {
    return Status::InvalidArgument("arrival scale must be positive, got " +
                                   std::to_string(scale));
  }
  arrival_scale_ = scale;
  return Status::Ok();
}

Status Engine::SwapPolicy(const std::string& name,
                          const policy::KnobMap& knobs) {
  if (state_ != EngineState::kServing) {
    return Status::FailedPrecondition(
        std::string("engine is ") + EngineStateName(state_) +
        "; mutations are only accepted while SERVING");
  }
  auto built = policy::PolicyRegistry::Global().Build(name, knobs);
  if (!built.ok()) return built.status();
  owned_policy_ = *std::move(built);
  policy_ = owned_policy_.get();
  policy_->Reset();
  // Redistribute the central queue under the new scheme right away.
  RunRound();
  return Status::Ok();
}

Status Engine::Reconfigure(const cloud::Config& config) {
  if (state_ != EngineState::kServing) {
    return Status::FailedPrecondition(
        std::string("engine is ") + EngineStateName(state_) +
        "; mutations are only accepted while SERVING");
  }
  if (config.NumTypes() != spec_.catalog->size()) {
    return Status::InvalidArgument(
        "config/catalog arity mismatch: config has " +
        std::to_string(config.NumTypes()) + " types, catalog " +
        std::to_string(spec_.catalog->size()));
  }
  if (config.TotalInstances() == 0) {
    return Status::InvalidArgument(
        "reconfiguration must keep at least one instance");
  }

  target_config_ = config;
  // The billed set (live + pending) is about to change shape.
  AccrueBilling();

  for (cloud::TypeId t = 0; t < spec_.catalog->size(); ++t) {
    const std::size_t target = static_cast<std::size_t>(config.Count(t));
    // Launches already pending count toward the target with their
    // *original* schedule — re-issuing an unchanged target must not
    // reset anyone's launch lag (a periodic reallocator would otherwise
    // starve growth forever whenever its period <= launch_lag_s).
    std::size_t expected = LiveCount(t) + pending_by_type_[t];
    if (target > expected) {
      for (std::size_t k = 0; k < target - expected; ++k) {
        const sim::EventId id =
            sim_->After(options_.launch_lag_s, [this, t] {
              --pending_by_type_[t];
              AddInstance(t);
              // Fresh capacity may unblock the central queue immediately.
              RunRound();
            });
        pending_launches_.push_back(PendingLaunch{id, t});
        ++pending_by_type_[t];
      }
    } else if (target < expected) {
      // Shrink by cancelling not-yet-online launches first (newest
      // scheduled last, cancelled first), then retiring live instances
      // newest-first: idle ones go offline on the spot, busy ones stop
      // taking work and drain what they hold.
      std::size_t excess = expected - target;
      for (std::size_t i = pending_launches_.size(); i-- > 0 && excess > 0;) {
        if (pending_launches_[i].type != t) continue;
        if (sim_->Cancel(pending_launches_[i].id)) {
          --pending_by_type_[t];
          --excess;
        }
        pending_launches_.erase(pending_launches_.begin() +
                                static_cast<std::ptrdiff_t>(i));
      }
      for (std::size_t i = instances_.size(); i-- > 0 && excess > 0;) {
        Instance& inst = instances_[i];
        if (inst.type != t || inst.retired || inst.retiring) continue;
        if (!inst.executing && inst.fifo.empty()) {
          inst.retired = true;
        } else {
          inst.retiring = true;
        }
        --excess;
      }
    }
  }
  return Status::Ok();
}

WindowedMetrics Engine::TakeWindow() {
  WindowedMetrics window;
  window.start = window_start_;
  window.end = sim_->Now();
  window.offered = window_offered_;
  window.served = window_served_;
  window.violations = window_violations_;
  window.rejected = window_rejected_;
  window.shed = window_shed_;
  if (!window_latencies_ms_.empty()) {
    window.p99_ms =
        Percentile(window_latencies_ms_, 99.0, percentile_scratch_);
    window.mean_ms = Mean(window_latencies_ms_);
  }
  const Time span = window.end - window.start;
  if (span > 0.0) {
    window.offered_qps = static_cast<double>(window.offered) / span;
    window.qps = static_cast<double>(window.served) / span;
  }
  if (window.offered > 0) {
    window.mean_batch =
        window_batch_sum_ / static_cast<double>(window.offered);
    window.reject_rate = static_cast<double>(window.rejected) /
                         static_cast<double>(window.offered);
    window.shed_rate = static_cast<double>(window.shed) /
                       static_cast<double>(window.offered);
    window.queue_depth_mean =
        window_queue_sum_ / static_cast<double>(window.offered);
  }
  window.queue_depth_max = window_queue_max_;
  window_start_ = window.end;
  window_offered_ = 0;
  window_served_ = 0;
  window_violations_ = 0;
  window_rejected_ = 0;
  window_shed_ = 0;
  window_batch_sum_ = 0.0;
  window_queue_max_ = 0;
  window_queue_sum_ = 0.0;
  window_latencies_ms_.clear();
  return window;
}

RunResult Engine::Totals() const {
  RunResult result = totals_;
  result.aborted = abort_requested_;
  if (!result.latencies_ms.empty()) {
    result.p99_ms = Percentile(result.latencies_ms, 99.0);
    result.mean_ms = Mean(result.latencies_ms);
  } else if (result.served > 0) {
    // keep_latencies == false: the mean survives via the running sum;
    // cumulative p99 is unavailable (read per-window p99 instead).
    result.mean_ms = latency_sum_ms_ / static_cast<double>(result.served);
  }
  if (result.makespan > 0.0 && result.served > 0) {
    result.throughput_qps =
        static_cast<double>(result.served) / result.makespan;
  }
  return result;
}

void Engine::OnArrival(const workload::Query& q) {
  ++window_offered_;
  window_batch_sum_ += q.batch_size;
  if (monitor_tap_ != nullptr) monitor_tap_->Observe(q.batch_size);
  if (telemetry_ != nullptr) {
    telemetry_->metrics->Add(telemetry_->queries_offered, telemetry_->shard);
  }
  if (AdmissionRejects()) {
    // The arrival is counted (it happened, and the monitor saw its
    // batch) but never enters the queue: no round runs for it.
    ++totals_.rejected;
    ++window_rejected_;
    if (telemetry_ != nullptr) {
      telemetry_->metrics->Add(telemetry_->queries_rejected,
                               telemetry_->shard);
    }
    SampleQueueDepth();
    return;
  }
  waiting_.push_back(q);
  SampleQueueDepth();
  RunRound();
}

void Engine::SampleQueueDepth() {
  // Central-queue depth right after the admission decision: the rejected
  // case samples the (unchanged) queue that caused the rejection, the
  // accepted case includes the new arrival. Feeds the per-window
  // queue_depth_max / queue_depth_mean fields and the telemetry gauge.
  const std::size_t depth = waiting_.size();
  window_queue_max_ = std::max(window_queue_max_, depth);
  window_queue_sum_ += static_cast<double>(depth);
  if (telemetry_ != nullptr) {
    telemetry_->metrics->Set(telemetry_->queue_depth, telemetry_->shard,
                             static_cast<double>(depth));
  }
}

bool Engine::AdmissionRejects() const {
  const AdmissionOptions& admission = options_.admission;
  if (admission.max_queue > 0 && waiting_.size() >= admission.max_queue) {
    return true;
  }
  if (admission.max_queue_s > 0.0 && !waiting_.empty()) {
    double queued_work_s = 0.0;
    for (const workload::Query& w : waiting_) {
      queued_work_s += MinServiceSeconds(w.batch_size);
    }
    const std::size_t assignable = AssignableInstances();
    queued_work_s /=
        static_cast<double>(std::max<std::size_t>(assignable, 1));
    if (queued_work_s > admission.max_queue_s) return true;
  }
  return false;
}

double Engine::MinServiceSeconds(int batch) const {
  double best_ms = -1.0;
  for (const Instance& inst : instances_) {
    if (inst.retired || inst.retiring) continue;
    const double ms = predictor_->PredictMsNoiseless(inst.type, batch);
    if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
  }
  return best_ms < 0.0 ? 0.0 : MsToSec(best_ms);
}

void Engine::ShedExpired() {
  const double deadline_s = options_.admission.deadline_s;
  if (deadline_s <= 0.0) return;
  // waiting_ is FIFO by arrival, so the earliest deadline sits at the
  // head: drop doomed queries until the head is feasible. Survivors keep
  // their order, which is what makes shedding deterministic across
  // AdvanceTo step sizes.
  std::size_t shed_now = 0;
  while (!waiting_.empty()) {
    const workload::Query& q = waiting_.front();
    const Time latest_finish = q.arrival + deadline_s;
    if (sim_->Now() + MinServiceSeconds(q.batch_size) <= latest_finish) {
      break;
    }
    waiting_.pop_front();
    ++totals_.shed;
    ++window_shed_;
    ++shed_now;
  }
  if (telemetry_ != nullptr && shed_now > 0) {
    telemetry_->metrics->Add(telemetry_->queries_shed, telemetry_->shard,
                             static_cast<double>(shed_now));
  }
}

const std::vector<InstanceView>& Engine::SnapshotInstances() {
  std::vector<InstanceView>& views = round_views_;
  views.clear();
  views.reserve(instances_.size());
  view_to_instance_.clear();
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    // Retiring/retired instances take no new work and are invisible to
    // the policy. Batch runs never retire, so this is the full vector.
    if (inst.retired || inst.retiring) continue;
    InstanceView v;
    v.type = inst.type;
    Time avail = inst.executing ? inst.current_finish : sim_->Now();
    for (const workload::Query& q : inst.fifo) {
      avail += MsToSec(predictor_->PredictMsNoiseless(inst.type, q.batch_size));
    }
    v.available_at = avail;
    v.idle = !inst.executing && inst.fifo.empty();
    v.backlog = inst.fifo.size();
    views.push_back(v);
    view_to_instance_.push_back(i);
  }
  return views;
}

void Engine::RunRound() {
  if (abort_requested_) return;
  ShedExpired();
  if (waiting_.empty()) return;

  // Saturated-round fast path (late binding only): proposals start work
  // only on idle instances, so a round with none policy-visible-idle is a
  // state-level no-op — every tentative pairing dissolves and the queue
  // survives untouched to the next round. The overload regime hits this
  // on nearly every arrival, and skipping the snapshot, the per-type
  // pricing and the assignment solve roughly halves its round cost. (A
  // stateful policy would observe fewer Distribute calls; the bundled
  // policies derive each round purely from the RoundContext.)
  if (!policy_->EarlyBinding()) {
    bool any_idle = false;
    for (const Instance& inst : instances_) {
      if (!inst.retired && !inst.retiring && !inst.executing &&
          inst.fifo.empty()) {
        any_idle = true;
        break;
      }
    }
    if (!any_idle) return;
  }

  const std::size_t window =
      std::min(waiting_.size(), options_.run.matcher_window);
  std::vector<workload::Query>& prefix = round_prefix_;
  prefix.clear();
  prefix.reserve(window);
  for (std::size_t i = 0; i < window; ++i) prefix.push_back(waiting_[i]);
  const std::vector<InstanceView>& views = SnapshotInstances();
  if (views.empty()) return;  // everything retiring; wait for launches

  policy::RoundContext ctx;
  ctx.now = sim_->Now();
  ctx.qos_sec = qos_sec_;
  ctx.waiting = prefix;
  ctx.instances = views;
  ctx.predictor = predictor_.get();
  ctx.catalog = spec_.catalog;

  std::vector<policy::Assignment>& proposed = round_assignments_;
  policy_->Distribute(ctx, proposed);

  // Validate indices. Queries are one-to-one; instances are one-to-one for
  // late-binding policies (Eq. 6), while early-binding policies may stack
  // several commitments onto one instance's FIFO in a single round.
  const bool early = policy_->EarlyBinding();
  round_q_used_.assign(window, 0);
  round_i_used_.assign(views.size(), 0);
  std::vector<char>& q_used = round_q_used_;
  std::vector<char>& i_used = round_i_used_;
  for (const policy::Assignment& a : proposed) {
    if (a.waiting_idx >= window || a.instance_idx >= views.size() ||
        q_used[a.waiting_idx] || (!early && i_used[a.instance_idx])) {
      throw std::logic_error("Policy returned an invalid assignment set");
    }
    q_used[a.waiting_idx] = 1;
    i_used[a.instance_idx] = 1;
  }
  round_remove_.assign(window, 0);
  std::vector<char>& remove = round_remove_;
  for (const policy::Assignment& a : proposed) {
    Instance& inst = instances_[view_to_instance_[a.instance_idx]];
    const workload::Query& q = prefix[a.waiting_idx];
    const bool idle = !inst.executing && inst.fifo.empty();
    if (idle) {
      BeginExecution(view_to_instance_[a.instance_idx], q);
      remove[a.waiting_idx] = 1;
    } else if (early) {
      inst.fifo.push_back(q);
      remove[a.waiting_idx] = 1;
    }
    // Late binding onto a busy instance: the pairing was tentative; the
    // query stays in the central queue for the next round.
  }

  // Only the first `window` entries can have been taken, so splice the
  // survivors back in place: O(window) per round, not O(backlog) — at
  // sustained scale the queue behind the matcher window can be huge.
  waiting_.PopFrontN(window);
  for (std::size_t i = window; i-- > 0;) {
    if (!remove[i]) waiting_.push_front(prefix[i]);
  }
}

void Engine::BeginExecution(std::size_t instance_idx,
                            const workload::Query& q) {
  Instance& inst = instances_[instance_idx];
  assert(!inst.executing);
  const Time start = sim_->Now();
  const Time actual = spec_.truth->Latency(inst.type, q.batch_size);
  Time finish = start + actual;
  if (network_ != nullptr) {
    // Degraded fabric: the dispatch and the reply each ride one sampled
    // hop. Compute time (busy_time) is unchanged — the instance is just
    // occupied longer, which is exactly how netem slows a real fleet.
    finish += network_->SampleDelay(net_rng_) + network_->SampleDelay(net_rng_);
  }
  inst.executing = true;
  inst.current_finish = finish;
  inst.current_query = q;
  inst.current_work = actual;
  inst.busy_time += actual;
  inst.completion_event = sim_->At(finish, [this, instance_idx, q, start] {
    OnCompletion(instance_idx, q, start);
  });
}

void Engine::OnCompletion(std::size_t instance_idx, workload::Query q,
                          Time start) {
  Instance& inst = instances_[instance_idx];
  const Time finish = sim_->Now();
  inst.executing = false;
  ++inst.served;

  const double latency_ms = SecToMs(finish - q.arrival);
  if (options_.run.keep_latencies) totals_.latencies_ms.push_back(latency_ms);
  latency_sum_ms_ += latency_ms;
  ++totals_.served;
  if (telemetry_ != nullptr) {
    telemetry_->metrics->Add(telemetry_->queries_served, telemetry_->shard);
  }
  totals_.makespan = std::max(totals_.makespan, finish);
  totals_.per_type_busy[inst.type] += finish - start;
  ++totals_.per_type_served[inst.type];
  ++window_served_;
  window_latencies_ms_.push_back(latency_ms);
  if (latency_ms > spec_.qos_ms) {
    ++totals_.violations;
    ++window_violations_;
  }
  if (options_.run.keep_records) {
    totals_.records.push_back(ServedRecord{q.id, q.batch_size, inst.type,
                                           instance_idx, q.arrival, start,
                                           finish});
  }

  // Feed the online predictor with the *serving* latency (queueing time is
  // not part of the latency surface).
  predictor_->Observe(inst.type, q.batch_size, SecToMs(finish - start));

  if (options_.run.abort_violation_fraction > 0.0 && totals_.offered > 0) {
    const double frac = static_cast<double>(totals_.violations) /
                        static_cast<double>(totals_.offered);
    if (frac > options_.run.abort_violation_fraction) {
      abort_requested_ = true;
      state_ = EngineState::kDrained;
      return;
    }
  }

  StartIfIdle(instance_idx);
  RunRound();
}

void Engine::StartIfIdle(std::size_t instance_idx) {
  Instance& inst = instances_[instance_idx];
  if (!inst.executing && !inst.fifo.empty()) {
    const workload::Query next = inst.fifo.front();
    inst.fifo.pop_front();
    BeginExecution(instance_idx, next);
  } else if (inst.retiring && !inst.executing && inst.fifo.empty()) {
    AccrueBilling();  // drained: this instance stops billing now
    inst.retiring = false;
    inst.retired = true;
  }
}

}  // namespace kairos::serving
