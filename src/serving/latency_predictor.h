// Online latency predictor (Sec. 5.1 "Remarks on assumptions and overhead"):
// Kairos predicts query latency per (instance type, batch size). It starts
// with a linear model fitted online and transitions to a lookup table as
// batches repeat; the paper notes Pearson(latency, batch) > 0.99, so the
// linear phase is already accurate after a handful of queries.
//
// Prediction noise (Fig. 16b) is injected here, emulating cloud performance
// variability between the predicted and realized latency.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/instance_type.h"
#include "common/time.h"
#include "latency/latency_model.h"
#include "latency/noise.h"

namespace kairos::serving {

/// Predictor configuration.
struct PredictorOptions {
  /// When true the predictor is seeded from the true latency surface
  /// (equivalent to a converged predictor; the usual bench setting). When
  /// false it learns purely online from Observe() calls.
  bool pretrained = true;

  /// Relative std-dev of multiplicative prediction noise (0 = exact,
  /// 0.05 reproduces Fig. 16b).
  double noise_sigma = 0.0;

  /// Seed for the noise stream.
  std::uint64_t noise_seed = 0x5EEDED;
};

/// Learns and serves latency predictions per (type, batch).
class LatencyPredictor {
 public:
  LatencyPredictor(const cloud::Catalog& catalog,
                   const latency::LatencyModel& truth,
                   PredictorOptions options);

  /// Predicted serving latency in milliseconds. Non-const because the noise
  /// stream advances.
  double PredictMs(cloud::TypeId type, int batch);

  /// Predicted serving latency in simulator seconds.
  Time Predict(cloud::TypeId type, int batch) {
    return MsToSec(PredictMs(type, batch));
  }

  /// Noise-free prediction (used for the heterogeneity coefficients, which
  /// the paper computes once from the largest query's latency ratio).
  double PredictMsNoiseless(cloud::TypeId type, int batch) const;

  /// Noise-free predictions for a whole frontier of batch sizes in one
  /// call: out[i] = PredictMsNoiseless(type, batches[i]). The per-type
  /// state is resolved once, so a policy pricing every (query, type) pair
  /// of a round pays one call per type instead of one per pair.
  void PredictMsNoiselessBatch(cloud::TypeId type,
                               const std::vector<int>& batches,
                               std::vector<double>& out) const;

  /// True when predictions carry no noise (sigma <= 0): PredictMs never
  /// advances the RNG, so noiseless batched predictions are bit-identical
  /// to per-call PredictMs and policies may batch freely.
  bool IsDeterministic() const { return noise_.sigma() <= 0.0; }

  /// Records an observed (type, batch) -> latency_ms sample.
  void Observe(cloud::TypeId type, int batch, double latency_ms);

  /// True while the type still falls back to the online linear model for
  /// unseen batch sizes with fewer than two distinct observed batches.
  bool HasLinearFit(cloud::TypeId type) const;

  /// Number of observations recorded for a type.
  std::size_t ObservationCount(cloud::TypeId type) const;

 private:
  struct TypeState {
    // Lookup table indexed directly by batch size (domain is the fixed
    // [1, kMaxBatchSize]): mean latency and sample count per batch, with
    // count == 0 marking "never observed". Replaces an unordered_map that
    // showed up in AllowableThroughput profiles — the dense array is one
    // predictable load where the map was a hash + node chase.
    std::vector<double> mean_ms;        ///< [0, kMaxBatchSize], 0 unused
    std::vector<std::size_t> samples;   ///< parallel to mean_ms
    // Linear-regression accumulators over all observations.
    std::size_t n = 0;
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    int distinct_batches = 0;
  };

  double RawPredict(const TypeState& st, int batch) const;

  std::vector<TypeState> per_type_;
  latency::PredictionNoise noise_;
};

}  // namespace kairos::serving
