// "DOMAIN_OUTAGE": rack/AZ-scale correlated loss. Each targeted model
// suffers outages as a Poisson process; every outage samples one of the
// model's failure domains (uniform draw pre-sampled at Arm, so Apply is a
// pure function of the armed state) and reclaims *all* of its assignable
// instances in a single fault — with a notice window when notice_s > 0,
// abruptly otherwise. The engine spares one fleet-wide survivor when the
// sampled domain holds the whole deployment. No market side: outages
// model infrastructure failure, not spot economics (compose with
// SPOT_PREEMPTION for both).
#include <algorithm>
#include <string>
#include <utility>

#include "chaos/injectors.h"
#include "common/rng.h"
#include "common/strings.h"

namespace kairos::chaos {
namespace {

class DomainOutageInjector final : public ChaosInjector {
 public:
  explicit DomainOutageInjector(DomainOutageOptions options)
      : options_(options) {}

  std::string Name() const override { return "DOMAIN_OUTAGE"; }

  Status Arm(const ChaosSchedule& schedule) override {
    if (options_.rate_per_hour < 0.0) {
      return Status::InvalidArgument(
          "DOMAIN_OUTAGE: rate_per_hour must be >= 0, got " +
          std::to_string(options_.rate_per_hour));
    }
    if (options_.notice_s < 0.0) {
      return Status::InvalidArgument(
          "DOMAIN_OUTAGE: notice_s must be >= 0, got " +
          std::to_string(options_.notice_s));
    }
    if (options_.model != kAllModels &&
        options_.model >= schedule.num_models) {
      return Status::InvalidArgument(
          "DOMAIN_OUTAGE targets model index " +
          std::to_string(options_.model) + ", but the served plan has " +
          std::to_string(schedule.num_models) + " models");
    }
    timeline_.clear();
    next_ = 0;
    const double rate_per_s = options_.rate_per_hour / 3600.0;
    if (rate_per_s <= 0.0) return Status::Ok();  // armed, but a no-op
    const std::uint64_t base_seed =
        options_.seed != 0 ? options_.seed : schedule.seed ^ 0x444F4D41ULL;
    for (std::size_t j = 0; j < schedule.num_models; ++j) {
      if (options_.model != kAllModels && options_.model != j) continue;
      // One independent outage timeline per model, forked from the base
      // seed so adding a model never shifts another model's faults.
      Rng rng(base_seed + 0x9E3779B97F4A7C15ULL * (j + 1));
      for (Time t = rng.Exponential(rate_per_s); t < schedule.duration_s;
           t += rng.Exponential(rate_per_s)) {
        timeline_.push_back({t, j, rng.Uniform()});
      }
    }
    std::sort(timeline_.begin(), timeline_.end(),
              [](const Outage& a, const Outage& b) {
                return a.time != b.time ? a.time < b.time
                                        : a.model < b.model;
              });
    return Status::Ok();
  }

  std::vector<Time> FaultTimes() const override {
    std::vector<Time> times;
    times.reserve(timeline_.size());
    for (const Outage& o : timeline_) times.push_back(o.time);
    return times;
  }

  std::vector<ChaosEvent> Apply(Time now, ChaosTarget& target) override {
    std::vector<ChaosEvent> events;
    for (; next_ < timeline_.size() && timeline_[next_].time <= now + 1e-9;
         ++next_) {
      const Outage& o = timeline_[next_];
      const std::size_t domains = target.NumDomains(o.model);
      const std::size_t domain = std::min(
          domains - 1,
          static_cast<std::size_t>(o.domain_u * static_cast<double>(domains)));
      const std::size_t lost =
          options_.notice_s > 0.0
              ? target.PreemptDomain(o.model, domain, options_.notice_s)
              : target.KillDomain(o.model, domain);
      if (lost == 0) continue;  // empty domain, or only the survivor left
      ChaosEvent event;
      event.time = o.time;
      event.kind = ChaosEventKind::kDomainOutage;
      event.model = o.model;
      event.instances = lost;
      event.detail =
          "failure domain " + std::to_string(domain) + " lost (" +
          std::to_string(lost) + " instances" +
          (options_.notice_s > 0.0
               ? "; hard kill in " + FormatNumber(options_.notice_s) + "s)"
               : ", abrupt)");
      events.push_back(std::move(event));
    }
    return events;
  }

 private:
  /// One armed outage; the domain draw is pre-sampled at Arm().
  struct Outage {
    Time time = 0.0;
    std::size_t model = 0;
    double domain_u = 0.0;  ///< uniform for the domain pick
  };

  DomainOutageOptions options_;
  /// Outages sorted by (time, model); rebuilt by every Arm().
  std::vector<Outage> timeline_;
  std::size_t next_ = 0;  ///< first timeline entry not yet applied
};

const ChaosRegistrar kDomainOutage(
    ChaosInfo{"DOMAIN_OUTAGE",
              "correlated rack/AZ outages: Poisson per-model events "
              "(rate_per_hour) that each reclaim every instance of one "
              "sampled failure domain — with a notice_s warning when > 0, "
              "abruptly otherwise; model -1 targets every model, seed 0 "
              "derives from the run seed",
              {{"rate_per_hour", 2.0},
               {"notice_s", 0.0},
               {"model", -1.0},
               {"seed", 0.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<ChaosInjector>> {
      DomainOutageOptions options;
      options.rate_per_hour = knobs.at("rate_per_hour");
      if (options.rate_per_hour < 0.0) {
        return Status::InvalidArgument(
            "chaos injector DOMAIN_OUTAGE: rate_per_hour must be >= 0");
      }
      options.notice_s = knobs.at("notice_s");
      if (options.notice_s < 0.0) {
        return Status::InvalidArgument(
            "chaos injector DOMAIN_OUTAGE: notice_s must be >= 0");
      }
      const double model = knobs.at("model");
      options.model =
          model < 0.0 ? kAllModels : static_cast<std::size_t>(model);
      options.seed = static_cast<std::uint64_t>(knobs.at("seed"));
      return MakeDomainOutage(options);
    });

}  // namespace

std::unique_ptr<ChaosInjector> MakeDomainOutage(DomainOutageOptions options) {
  return std::make_unique<DomainOutageInjector>(options);
}

}  // namespace kairos::chaos
