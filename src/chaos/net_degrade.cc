// "NET_DEGRADE": swap a degraded rpc::NetworkModel under the targeted
// models' dispatcher<->instance fabric for [start_s, end_s), then restore
// the pristine zero-delay fabric — netem for the co-simulation. Every
// execution inside the window pays two sampled hops (dispatch + reply),
// so windowed p99 rises and recovers on restore; hop draws come from each
// engine's dedicated network RNG, leaving arrival/policy streams intact.
#include <string>
#include <utility>

#include "chaos/injectors.h"
#include "common/strings.h"

namespace kairos::chaos {
namespace {

class NetDegradeInjector final : public ChaosInjector {
 public:
  explicit NetDegradeInjector(NetDegradeOptions options)
      : options_(options) {}

  std::string Name() const override { return "NET_DEGRADE"; }

  Status Arm(const ChaosSchedule& schedule) override {
    const Status net = rpc::NetworkModel::Validate(
        options_.base_us, options_.jitter_sigma, options_.loss_prob);
    if (!net.ok()) {
      return Status(net.code(), "NET_DEGRADE: " + net.message());
    }
    if (options_.model != kAllModels &&
        options_.model >= schedule.num_models) {
      return Status::InvalidArgument(
          "NET_DEGRADE targets model index " +
          std::to_string(options_.model) + ", but the served plan has " +
          std::to_string(schedule.num_models) + " models");
    }
    if (options_.start_s < 0.0) {
      return Status::InvalidArgument("NET_DEGRADE: start_s must be >= 0");
    }
    end_s_ = options_.end_s > 0.0 ? options_.end_s : schedule.duration_s;
    if (end_s_ <= options_.start_s) {
      return Status::InvalidArgument(
          "NET_DEGRADE: the degradation window [" +
          FormatNumber(options_.start_s) + "s, " + FormatNumber(end_s_) +
          "s) is empty");
    }
    duration_s_ = schedule.duration_s;
    degraded_ = false;
    restored_ = false;
    return Status::Ok();
  }

  std::vector<Time> FaultTimes() const override {
    std::vector<Time> times;
    times.push_back(options_.start_s);
    if (end_s_ < duration_s_) times.push_back(end_s_);
    return times;
  }

  std::vector<ChaosEvent> Apply(Time now, ChaosTarget& target) override {
    std::vector<ChaosEvent> events;
    if (!degraded_ && now + 1e-9 >= options_.start_s) {
      degraded_ = true;
      const rpc::NetworkModel net(options_.base_us, options_.jitter_sigma,
                                  options_.loss_prob);
      for (std::size_t j = 0; j < target.NumModels(); ++j) {
        if (options_.model != kAllModels && options_.model != j) continue;
        target.DegradeNetwork(j, net);
        ChaosEvent event;
        event.time = options_.start_s;
        event.kind = ChaosEventKind::kNetDegrade;
        event.model = j;
        event.detail = "fabric degraded: base " +
                       FormatNumber(options_.base_us) + "us, jitter sigma " +
                       FormatNumber(options_.jitter_sigma) + ", loss " +
                       FormatNumber(options_.loss_prob);
        events.push_back(std::move(event));
      }
    }
    if (degraded_ && !restored_ && end_s_ < duration_s_ &&
        now + 1e-9 >= end_s_) {
      restored_ = true;
      for (std::size_t j = 0; j < target.NumModels(); ++j) {
        if (options_.model != kAllModels && options_.model != j) continue;
        target.RestoreNetwork(j);
        ChaosEvent event;
        event.time = end_s_;
        event.kind = ChaosEventKind::kNetRestore;
        event.model = j;
        event.detail = "pristine fabric restored";
        events.push_back(std::move(event));
      }
    }
    return events;
  }

 private:
  NetDegradeOptions options_;
  Time end_s_ = 0.0;       ///< resolved restore time (horizon when open)
  Time duration_s_ = 0.0;  ///< of the armed schedule
  bool degraded_ = false;
  bool restored_ = false;
};

const ChaosRegistrar kNetDegrade(
    ChaosInfo{"NET_DEGRADE",
              "degraded dispatcher<->instance fabric (base_us / "
              "jitter_sigma / loss_prob) over [start_s, end_s); end_s 0 = "
              "until the horizon, model -1 targets every model",
              {{"start_s", 0.0},
               {"end_s", 0.0},
               {"base_us", 2000.0},
               {"jitter_sigma", 0.5},
               {"loss_prob", 0.05},
               {"model", -1.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<ChaosInjector>> {
      NetDegradeOptions options;
      options.start_s = knobs.at("start_s");
      options.end_s = knobs.at("end_s");
      options.base_us = knobs.at("base_us");
      options.jitter_sigma = knobs.at("jitter_sigma");
      options.loss_prob = knobs.at("loss_prob");
      const Status net = rpc::NetworkModel::Validate(
          options.base_us, options.jitter_sigma, options.loss_prob);
      if (!net.ok()) {
        return Status(net.code(),
                      "chaos injector NET_DEGRADE: " + net.message());
      }
      if (options.start_s < 0.0 || options.end_s < 0.0) {
        return Status::InvalidArgument(
            "chaos injector NET_DEGRADE: start_s and end_s must be >= 0");
      }
      const double model = knobs.at("model");
      options.model =
          model < 0.0 ? kAllModels : static_cast<std::size_t>(model);
      return MakeNetDegrade(options);
    });

}  // namespace

std::unique_ptr<ChaosInjector> MakeNetDegrade(NetDegradeOptions options) {
  return std::make_unique<NetDegradeInjector>(options);
}

}  // namespace kairos::chaos
