// "SPOT_PREEMPTION": the preemptible instance market as a fault plan.
// Each targeted model's deployment is reclaimed as a Poisson process
// (exponential inter-arrival gaps at reclaim_rate_per_hour), every
// reclamation preceded by the market's notice window: the victim stops
// taking work at the notice and is hard-killed at the deadline unless it
// drained first. The discount side of the bargain is Market(): the fleet
// prices a covered model's billed spend at discount * on-demand.
#include <algorithm>
#include <string>
#include <utility>

#include "chaos/injectors.h"
#include "common/rng.h"
#include "common/strings.h"

namespace kairos::chaos {
namespace {

class SpotPreemptionInjector final : public ChaosInjector {
 public:
  explicit SpotPreemptionInjector(SpotPreemptionOptions options)
      : options_(options) {}

  std::string Name() const override { return "SPOT_PREEMPTION"; }

  Status Arm(const ChaosSchedule& schedule) override {
    const Status market = options_.market.Validate();
    if (!market.ok()) {
      return Status(market.code(), "SPOT_PREEMPTION: " + market.message());
    }
    if (options_.model != kAllModels &&
        options_.model >= schedule.num_models) {
      return Status::InvalidArgument(
          "SPOT_PREEMPTION targets model index " +
          std::to_string(options_.model) + ", but the served plan has " +
          std::to_string(schedule.num_models) + " models");
    }
    timeline_.clear();
    next_ = 0;
    num_models_ = schedule.num_models;
    const double rate_per_s =
        options_.market.reclaim_rate_per_hour / 3600.0;
    if (rate_per_s <= 0.0) return Status::Ok();  // armed, but a no-op
    const std::uint64_t base_seed =
        options_.seed != 0 ? options_.seed : schedule.seed ^ 0x53504F54ULL;
    for (std::size_t j = 0; j < schedule.num_models; ++j) {
      if (options_.model != kAllModels && options_.model != j) continue;
      // One independent renewal timeline per model, forked from the base
      // seed so adding a model never shifts another model's faults.
      Rng rng(base_seed + 0x9E3779B97F4A7C15ULL * (j + 1));
      for (Time t = rng.Exponential(rate_per_s); t < schedule.duration_s;
           t += rng.Exponential(rate_per_s)) {
        timeline_.push_back({t, j});
      }
    }
    std::sort(timeline_.begin(), timeline_.end());
    return Status::Ok();
  }

  std::vector<Time> FaultTimes() const override {
    std::vector<Time> times;
    times.reserve(timeline_.size());
    for (const auto& [t, j] : timeline_) times.push_back(t);
    return times;
  }

  std::vector<ChaosEvent> Apply(Time now, ChaosTarget& target) override {
    std::vector<ChaosEvent> events;
    for (; next_ < timeline_.size() && timeline_[next_].first <= now + 1e-9;
         ++next_) {
      const auto& [t, j] = timeline_[next_];
      const std::size_t noticed =
          target.Preempt(j, 1, options_.market.notice_s);
      if (noticed == 0) continue;  // last assignable instance spared
      ChaosEvent event;
      event.time = t;
      event.kind = ChaosEventKind::kPreemptionNotice;
      event.model = j;
      event.instances = noticed;
      event.detail = "spot reclamation notice; hard kill in " +
                     FormatNumber(options_.market.notice_s) + "s";
      events.push_back(std::move(event));
    }
    return events;
  }

  const cloud::SpotMarket* Market(std::size_t model) const override {
    if (options_.model != kAllModels && options_.model != model) {
      return nullptr;
    }
    if (model >= num_models_) return nullptr;
    return &options_.market;
  }

 private:
  SpotPreemptionOptions options_;
  /// (time, model) reclamations, sorted; rebuilt by every Arm().
  std::vector<std::pair<Time, std::size_t>> timeline_;
  std::size_t next_ = 0;        ///< first timeline entry not yet applied
  std::size_t num_models_ = 0;  ///< of the armed schedule
};

const ChaosRegistrar kSpotPreemption(
    ChaosInfo{"SPOT_PREEMPTION",
              "Poisson spot reclamations (rate_per_hour) with a notice_s "
              "warning and a spot discount on billed spend; model -1 "
              "targets every model, seed 0 derives from the run seed",
              {{"rate_per_hour", 30.0},
               {"notice_s", 2.0},
               {"discount", 0.35},
               {"model", -1.0},
               {"seed", 0.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<ChaosInjector>> {
      SpotPreemptionOptions options;
      options.market.reclaim_rate_per_hour = knobs.at("rate_per_hour");
      options.market.notice_s = knobs.at("notice_s");
      options.market.discount = knobs.at("discount");
      const Status market = options.market.Validate();
      if (!market.ok()) {
        return Status(market.code(),
                      "chaos injector SPOT_PREEMPTION: " + market.message());
      }
      const double model = knobs.at("model");
      options.model =
          model < 0.0 ? kAllModels : static_cast<std::size_t>(model);
      options.seed = static_cast<std::uint64_t>(knobs.at("seed"));
      return MakeSpotPreemption(options);
    });

}  // namespace

std::unique_ptr<ChaosInjector> MakeSpotPreemption(
    SpotPreemptionOptions options) {
  return std::make_unique<SpotPreemptionInjector>(options);
}

}  // namespace kairos::chaos
