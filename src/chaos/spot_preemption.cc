// "SPOT_PREEMPTION": the preemptible instance market as a fault plan.
// Each targeted model's deployment is reclaimed as a Poisson process
// (exponential inter-arrival gaps at reclaim_rate_per_hour), every
// reclamation preceded by the market's notice window: the victim stops
// taking work at the notice and is hard-killed at the deadline unless it
// drained first. The discount side of the bargain is Market(): the fleet
// prices a covered model's billed spend at discount * on-demand.
#include <algorithm>
#include <string>
#include <utility>

#include "chaos/injectors.h"
#include "common/rng.h"
#include "common/strings.h"

namespace kairos::chaos {
namespace {

class SpotPreemptionInjector final : public ChaosInjector {
 public:
  explicit SpotPreemptionInjector(SpotPreemptionOptions options)
      : options_(options) {}

  std::string Name() const override { return "SPOT_PREEMPTION"; }

  Status Arm(const ChaosSchedule& schedule) override {
    const Status market = options_.market.Validate();
    if (!market.ok()) {
      return Status(market.code(), "SPOT_PREEMPTION: " + market.message());
    }
    if (options_.correlation < 0.0 || options_.correlation > 1.0) {
      return Status::InvalidArgument(
          "SPOT_PREEMPTION: correlation must be in [0, 1], got " +
          std::to_string(options_.correlation));
    }
    if (options_.model != kAllModels &&
        options_.model >= schedule.num_models) {
      return Status::InvalidArgument(
          "SPOT_PREEMPTION targets model index " +
          std::to_string(options_.model) + ", but the served plan has " +
          std::to_string(schedule.num_models) + " models");
    }
    timeline_.clear();
    next_ = 0;
    num_models_ = schedule.num_models;
    const double rate_per_s =
        options_.market.reclaim_rate_per_hour / 3600.0;
    if (rate_per_s <= 0.0) return Status::Ok();  // armed, but a no-op
    const std::uint64_t base_seed =
        options_.seed != 0 ? options_.seed : schedule.seed ^ 0x53504F54ULL;
    for (std::size_t j = 0; j < schedule.num_models; ++j) {
      if (options_.model != kAllModels && options_.model != j) continue;
      // One independent renewal timeline per model, forked from the base
      // seed so adding a model never shifts another model's faults.
      Rng rng(base_seed + 0x9E3779B97F4A7C15ULL * (j + 1));
      for (Time t = rng.Exponential(rate_per_s); t < schedule.duration_s;
           t += rng.Exponential(rate_per_s)) {
        Reclaim r;
        r.time = t;
        r.model = j;
        // Correlation draws happen only when the knob is on, so a
        // correlation-0 market replays the PR 6 timelines draw-for-draw.
        if (options_.correlation > 0.0) {
          r.domain_wide = rng.Uniform() < options_.correlation;
          r.domain_u = rng.Uniform();
        }
        timeline_.push_back(r);
      }
    }
    std::sort(timeline_.begin(), timeline_.end(),
              [](const Reclaim& a, const Reclaim& b) {
                return a.time != b.time ? a.time < b.time
                                        : a.model < b.model;
              });
    return Status::Ok();
  }

  std::vector<Time> FaultTimes() const override {
    std::vector<Time> times;
    times.reserve(timeline_.size());
    for (const Reclaim& r : timeline_) times.push_back(r.time);
    return times;
  }

  std::vector<ChaosEvent> Apply(Time now, ChaosTarget& target) override {
    std::vector<ChaosEvent> events;
    for (; next_ < timeline_.size() && timeline_[next_].time <= now + 1e-9;
         ++next_) {
      const Reclaim& r = timeline_[next_];
      ChaosEvent event;
      event.time = r.time;
      event.model = r.model;
      if (r.domain_wide) {
        const std::size_t domains = target.NumDomains(r.model);
        const std::size_t domain = std::min(
            domains - 1, static_cast<std::size_t>(r.domain_u *
                                                  static_cast<double>(domains)));
        const std::size_t noticed =
            target.PreemptDomain(r.model, domain, options_.market.notice_s);
        if (noticed == 0) continue;  // nothing assignable in the domain
        event.kind = ChaosEventKind::kDomainOutage;
        event.instances = noticed;
        event.detail = "correlated spot reclamation of failure domain " +
                       std::to_string(domain) + "; hard kill in " +
                       FormatNumber(options_.market.notice_s) + "s";
      } else {
        const std::size_t noticed =
            target.Preempt(r.model, 1, options_.market.notice_s);
        if (noticed == 0) continue;  // last assignable instance spared
        event.kind = ChaosEventKind::kPreemptionNotice;
        event.instances = noticed;
        event.detail = "spot reclamation notice; hard kill in " +
                       FormatNumber(options_.market.notice_s) + "s";
      }
      events.push_back(std::move(event));
    }
    return events;
  }

  const cloud::SpotMarket* Market(std::size_t model) const override {
    if (options_.model != kAllModels && options_.model != model) {
      return nullptr;
    }
    if (model >= num_models_) return nullptr;
    return &options_.market;
  }

 private:
  /// One armed reclamation; the correlation draws are pre-sampled at
  /// Arm() so Apply() stays a pure function of the armed state.
  struct Reclaim {
    Time time = 0.0;
    std::size_t model = 0;
    bool domain_wide = false;  ///< reclaim a whole failure domain
    double domain_u = 0.0;     ///< uniform for the domain pick
  };

  SpotPreemptionOptions options_;
  /// Reclamations sorted by (time, model); rebuilt by every Arm().
  std::vector<Reclaim> timeline_;
  std::size_t next_ = 0;        ///< first timeline entry not yet applied
  std::size_t num_models_ = 0;  ///< of the armed schedule
};

const ChaosRegistrar kSpotPreemption(
    ChaosInfo{"SPOT_PREEMPTION",
              "Poisson spot reclamations (rate_per_hour) with a notice_s "
              "warning and a spot discount on billed spend; correlation "
              "is the chance a reclamation takes a whole failure domain; "
              "curve_* knobs shape a time-varying discount; model -1 "
              "targets every model, seed 0 derives from the run seed",
              {{"rate_per_hour", 30.0},
               {"notice_s", 2.0},
               {"discount", 0.35},
               {"correlation", 0.0},
               {"curve_amplitude", 0.0},
               {"curve_period_s", 0.0},
               {"curve_phase_rad", 0.0},
               {"curve_slope_per_hour", 0.0},
               {"model", -1.0},
               {"seed", 0.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<ChaosInjector>> {
      SpotPreemptionOptions options;
      options.market.reclaim_rate_per_hour = knobs.at("rate_per_hour");
      options.market.notice_s = knobs.at("notice_s");
      options.market.discount = knobs.at("discount");
      options.market.curve_amplitude = knobs.at("curve_amplitude");
      options.market.curve_period_s = knobs.at("curve_period_s");
      options.market.curve_phase_rad = knobs.at("curve_phase_rad");
      options.market.curve_slope_per_hour = knobs.at("curve_slope_per_hour");
      const Status market = options.market.Validate();
      if (!market.ok()) {
        return Status(market.code(),
                      "chaos injector SPOT_PREEMPTION: " + market.message());
      }
      options.correlation = knobs.at("correlation");
      if (options.correlation < 0.0 || options.correlation > 1.0) {
        return Status::InvalidArgument(
            "chaos injector SPOT_PREEMPTION: correlation must be in "
            "[0, 1], got " +
            std::to_string(options.correlation));
      }
      const double model = knobs.at("model");
      options.model =
          model < 0.0 ? kAllModels : static_cast<std::size_t>(model);
      options.seed = static_cast<std::uint64_t>(knobs.at("seed"));
      return MakeSpotPreemption(options);
    });

}  // namespace

std::unique_ptr<ChaosInjector> MakeSpotPreemption(
    SpotPreemptionOptions options) {
  return std::make_unique<SpotPreemptionInjector>(options);
}

}  // namespace kairos::chaos
