// The chaos subsystem (DESIGN.md Sec. 11): seeded, deterministic fault
// injectors for the fleet co-simulation. ROADMAP's "chaos and failure
// scenarios" item — the cost-efficiency story only matters if it survives
// what production actually does: spot reclamation, instance death,
// degraded networks. Injectors are registry-selected like every other
// strategy in the repo (PolicyRegistry / ControllerRegistry / ...):
//
//   * SPOT_PREEMPTION — a preemptible market (cloud::SpotMarket): Poisson
//                       reclamation timelines with a notice window and a
//                       spot discount on the model's billed spend;
//   * INSTANCE_DEATH  — abrupt Poisson kills, no notice, no discount;
//   * NET_DEGRADE     — swap a degraded rpc::NetworkModel (base/jitter/
//                       loss) under the dispatcher<->instance fabric for
//                       a time window;
//   * DOMAIN_OUTAGE   — correlated loss: one sampled rack/AZ failure
//                       domain reclaimed whole in a single fault;
//   * COMPOSITE       — schedule any of the above together on one
//                       timeline (scripted timelines go through
//                       MakeScriptedChaos, chaos/injectors.h).
//
// Determinism contract: Arm() precomputes the whole fault timeline from
// the schedule seed (forked per injector and per model — never shared
// with workload or policy streams); FaultTimes() turns the timeline into
// co-simulation barriers; Apply() runs on the driving thread with every
// shard quiesced at the barrier and must be a pure function of the armed
// state. Fault application is therefore bit-identical for every
// serve_threads value, and a run with no injector (or an injector armed
// at rate 0) is bit-identical to a chaos-free build (tests/chaos_test.cc).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"    // SpotMarket
#include "common/status.h"
#include "common/time.h"
#include "policy/registry.h"  // KnobMap + CanonicalSchemeName

namespace kairos::rpc {
class NetworkModel;  // rpc/netem.h
}  // namespace kairos::rpc

namespace kairos::chaos {

/// Injectors reuse the policy registry's knob convention: named numeric
/// tunables, booleans encoded as 0.0 / 1.0.
using policy::KnobMap;

/// Injector "model" target meaning "every served model".
inline constexpr std::size_t kAllModels =
    std::numeric_limits<std::size_t>::max();

/// What one applied fault was (FleetServeResult::chaos_log).
enum class ChaosEventKind {
  kPreemptionNotice,  ///< spot reclamation notice; the hard kill follows
  kPreemption,        ///< the reclamation's hard kill
  kInstanceDeath,     ///< abrupt kill, no notice
  kNetDegrade,        ///< degraded fabric installed
  kNetRestore,        ///< pristine fabric restored
  kDomainOutage,      ///< correlated loss of one whole failure domain
};

/// Human-readable event name ("PREEMPTION_NOTICE", ...).
const char* ChaosEventName(ChaosEventKind kind);

/// One fault the chaos plane applied.
struct ChaosEvent {
  Time time = 0.0;            ///< when the fault landed
  ChaosEventKind kind = ChaosEventKind::kInstanceDeath;
  std::size_t model = 0;      ///< served-plan model index
  std::size_t instances = 0;  ///< instances noticed / killed (0 for net)
  std::string detail;         ///< human-readable specifics
};

/// The shape of one ServeAll run, handed to Arm().
struct ChaosSchedule {
  double duration_s = 0.0;
  double window_s = 0.0;
  std::uint64_t seed = 0;      ///< the fleet seed; injectors fork from it
  std::size_t num_models = 0;  ///< served-plan model count
};

/// The fleet surface a firing injector mutates. Implemented inside
/// Fleet::ServeAll over the live shard engines; every call happens at a
/// barrier, on the driving thread, with all shards quiesced.
class ChaosTarget {
 public:
  virtual ~ChaosTarget() = default;

  virtual std::size_t NumModels() const = 0;
  virtual const std::string& ModelName(std::size_t model) const = 0;

  /// Assignable (live, non-retiring) instances of `model` right now.
  virtual std::size_t LiveInstances(std::size_t model) const = 0;

  /// Issues `count` spot reclamation notices: each target stops taking
  /// work immediately and is hard-killed notice_s seconds later unless it
  /// drained first. Returns notices actually issued (the engine spares
  /// its last assignable instance).
  virtual std::size_t Preempt(std::size_t model, std::size_t count,
                              double notice_s) = 0;

  /// Hard-kills `count` instances right now; same survivor guarantee.
  /// Returns the kills applied.
  virtual std::size_t Kill(std::size_t model, std::size_t count) = 0;

  /// Failure domains `model`'s instances are spread over (>= 1). The
  /// default (1) models a target without placement metadata; correlated
  /// injectors degrade gracefully to single-instance faults against it.
  virtual std::size_t NumDomains(std::size_t model) const {
    (void)model;
    return 1;
  }

  /// Issues reclamation notices to every assignable instance of `model`
  /// in failure domain `domain` (one survivor spared when the domain is
  /// the whole deployment). Default: one plain Preempt, so targets
  /// without domain support still see a fault.
  virtual std::size_t PreemptDomain(std::size_t model, std::size_t domain,
                                    double notice_s) {
    (void)domain;
    return Preempt(model, 1, notice_s);
  }

  /// Hard-kills every assignable instance of `model` in `domain` (same
  /// survivor rule). Default: one plain Kill.
  virtual std::size_t KillDomain(std::size_t model, std::size_t domain) {
    (void)domain;
    return Kill(model, 1);
  }

  /// Installs a copy of `net` as `model`'s dispatcher<->instance fabric.
  virtual void DegradeNetwork(std::size_t model,
                              const rpc::NetworkModel& net) = 0;

  /// Restores `model`'s pristine zero-delay fabric.
  virtual void RestoreNetwork(std::size_t model) = 0;
};

/// A fault-injection strategy. Implementations must uphold the
/// determinism contract in the header comment.
class ChaosInjector {
 public:
  virtual ~ChaosInjector() = default;

  /// Canonical injector name ("SPOT_PREEMPTION", ...).
  virtual std::string Name() const = 0;

  /// Called once per ServeAll run, before serving starts. Must *fully*
  /// reset per-run state (a programmatic injector may be reused across
  /// runs) and precompute the seeded fault timeline. kInvalidArgument for
  /// a target model index outside [0, num_models) or invalid parameters.
  virtual Status Arm(const ChaosSchedule& schedule) = 0;

  /// Times (inside [0, duration)) where armed faults are due; the fleet
  /// merges them into its barrier grid. May be empty (rate 0).
  virtual std::vector<Time> FaultTimes() const = 0;

  /// Applies every armed fault with time <= now that has not fired yet;
  /// returns what was done. Hard kills triggered by an earlier notice are
  /// *not* reported here — they fire on the shard clock and surface
  /// through serving::Engine::Faults().
  virtual std::vector<ChaosEvent> Apply(Time now, ChaosTarget& target) = 0;

  /// The spot market covering `model`; nullptr when the model rents on
  /// demand. Fleet::ServeAll prices each model's billed spend with this.
  virtual const cloud::SpotMarket* Market(std::size_t model) const {
    (void)model;
    return nullptr;
  }
};

/// Registration-time description of one injector.
struct ChaosInfo {
  std::string name;     ///< canonical name, e.g. "SPOT_PREEMPTION"
  std::string summary;  ///< one-line description for listings
  KnobMap knobs;        ///< supported knob names with their defaults
};

/// Builds an injector from a *complete* knob map (defaults merged with
/// the caller's overrides). kInvalidArgument for an out-of-range value.
using ChaosBuilder = std::function<StatusOr<std::unique_ptr<ChaosInjector>>(
    const KnobMap& knobs)>;

/// Process-wide name -> injector table, mirroring ControllerRegistry:
/// static registrars populate it, lookup is case-insensitive, unknown
/// names come back as kNotFound listing the alternatives.
class ChaosRegistry {
 public:
  static ChaosRegistry& Global();

  Status Register(ChaosInfo info, ChaosBuilder builder);

  /// Canonical injector names, sorted alphabetically.
  std::vector<std::string> ListNames() const;

  bool Contains(const std::string& name) const;

  /// Registration info (canonical name, summary, knobs).
  StatusOr<ChaosInfo> Info(const std::string& name) const;

  /// Builds an injector by (case-insensitive) name. `overrides` may set
  /// any subset of the declared knobs; an undeclared knob name or an
  /// out-of-range value is kInvalidArgument.
  StatusOr<std::unique_ptr<ChaosInjector>> Build(
      const std::string& name, const KnobMap& overrides = {}) const;

 private:
  struct Entry {
    ChaosInfo info;
    ChaosBuilder builder;
  };

  StatusOr<Entry> Find(const std::string& name) const;

  std::map<std::string, Entry> entries_;  ///< keyed by canonical name
};

/// Static-initialization helper, same pattern as ControllerRegistrar.
class ChaosRegistrar {
 public:
  ChaosRegistrar(ChaosInfo info, ChaosBuilder builder) {
    const Status status =
        ChaosRegistry::Global().Register(std::move(info), std::move(builder));
    if (!status.ok()) {
      std::fprintf(stderr, "ChaosRegistrar: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
};

}  // namespace kairos::chaos

namespace kairos {
using chaos::ChaosInjector;
using chaos::ChaosRegistry;
}  // namespace kairos
