// "COMPOSITE": a scripted *combination* of injectors run on one schedule.
// Arm() arms every child (any failure aborts the arm), FaultTimes() is the
// union of the children's timelines, Apply() runs the children in the
// order given so a deterministic storm mixes spot reclamations, abrupt
// deaths and fabric degradation without the children knowing about each
// other. Market() surfaces the first child quoting a market for a model.
#include <string>
#include <utility>

#include "chaos/injectors.h"

namespace kairos::chaos {
namespace {

class CompositeChaos final : public ChaosInjector {
 public:
  explicit CompositeChaos(std::vector<std::unique_ptr<ChaosInjector>> children)
      : children_(std::move(children)) {}

  std::string Name() const override { return "COMPOSITE"; }

  Status Arm(const ChaosSchedule& schedule) override {
    if (children_.empty()) {
      return Status::InvalidArgument(
          "COMPOSITE chaos built with every child toggled off; enable at "
          "least one of spot / death / net");
    }
    for (const auto& child : children_) {
      if (child == nullptr) {
        return Status::InvalidArgument("COMPOSITE chaos given a null child");
      }
      const Status armed = child->Arm(schedule);
      if (!armed.ok()) {
        return Status(armed.code(), "COMPOSITE child " + child->Name() +
                                        ": " + armed.message());
      }
    }
    return Status::Ok();
  }

  std::vector<Time> FaultTimes() const override {
    std::vector<Time> times;
    for (const auto& child : children_) {
      const std::vector<Time> child_times = child->FaultTimes();
      times.insert(times.end(), child_times.begin(), child_times.end());
    }
    return times;  // the fleet dedups barrier times itself
  }

  std::vector<ChaosEvent> Apply(Time now, ChaosTarget& target) override {
    std::vector<ChaosEvent> events;
    for (const auto& child : children_) {
      std::vector<ChaosEvent> child_events = child->Apply(now, target);
      events.insert(events.end(),
                    std::make_move_iterator(child_events.begin()),
                    std::make_move_iterator(child_events.end()));
    }
    return events;
  }

  const cloud::SpotMarket* Market(std::size_t model) const override {
    for (const auto& child : children_) {
      if (const cloud::SpotMarket* market = child->Market(model)) {
        return market;
      }
    }
    return nullptr;
  }

 private:
  std::vector<std::unique_ptr<ChaosInjector>> children_;
};

const ChaosRegistrar kComposite(
    ChaosInfo{"COMPOSITE",
              "combination storm: spot/death/net toggle the children; the "
              "remaining knobs parameterize whichever children are on "
              "(model -1 targets every model, seed 0 derives from the run "
              "seed)",
              {{"spot", 1.0},
               {"death", 0.0},
               {"net", 0.0},
               {"rate_per_hour", 30.0},
               {"notice_s", 2.0},
               {"discount", 0.35},
               {"death_rate_per_hour", 10.0},
               {"net_start_s", 0.0},
               {"net_end_s", 0.0},
               {"base_us", 2000.0},
               {"jitter_sigma", 0.5},
               {"loss_prob", 0.05},
               {"model", -1.0},
               {"seed", 0.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<ChaosInjector>> {
      const double model_knob = knobs.at("model");
      const std::size_t model =
          model_knob < 0.0 ? kAllModels
                           : static_cast<std::size_t>(model_knob);
      const auto seed = static_cast<std::uint64_t>(knobs.at("seed"));
      std::vector<std::unique_ptr<ChaosInjector>> children;
      if (knobs.at("spot") != 0.0) {
        SpotPreemptionOptions spot;
        spot.market.reclaim_rate_per_hour = knobs.at("rate_per_hour");
        spot.market.notice_s = knobs.at("notice_s");
        spot.market.discount = knobs.at("discount");
        const Status market = spot.market.Validate();
        if (!market.ok()) {
          return Status(market.code(),
                        "chaos injector COMPOSITE: " + market.message());
        }
        spot.model = model;
        spot.seed = seed;
        children.push_back(MakeSpotPreemption(spot));
      }
      if (knobs.at("death") != 0.0) {
        InstanceDeathOptions death;
        death.rate_per_hour = knobs.at("death_rate_per_hour");
        if (death.rate_per_hour < 0.0) {
          return Status::InvalidArgument(
              "chaos injector COMPOSITE: death_rate_per_hour must be >= 0");
        }
        death.model = model;
        death.seed = seed;
        children.push_back(MakeInstanceDeath(death));
      }
      if (knobs.at("net") != 0.0) {
        NetDegradeOptions net;
        net.start_s = knobs.at("net_start_s");
        net.end_s = knobs.at("net_end_s");
        net.base_us = knobs.at("base_us");
        net.jitter_sigma = knobs.at("jitter_sigma");
        net.loss_prob = knobs.at("loss_prob");
        const Status fabric = rpc::NetworkModel::Validate(
            net.base_us, net.jitter_sigma, net.loss_prob);
        if (!fabric.ok()) {
          return Status(fabric.code(),
                        "chaos injector COMPOSITE: " + fabric.message());
        }
        net.model = model;
        children.push_back(MakeNetDegrade(net));
      }
      if (children.empty()) {
        return Status::InvalidArgument(
            "chaos injector COMPOSITE: every child is toggled off; set at "
            "least one of spot, death, net to 1");
      }
      return MakeCompositeChaos(std::move(children));
    });

}  // namespace

std::unique_ptr<ChaosInjector> MakeCompositeChaos(
    std::vector<std::unique_ptr<ChaosInjector>> children) {
  return std::make_unique<CompositeChaos>(std::move(children));
}

}  // namespace kairos::chaos
