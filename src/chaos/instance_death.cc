// "INSTANCE_DEATH": abrupt hardware attrition. Each targeted model loses
// instances as a Poisson process — no notice, no discount, the executing
// query and FIFO bounce back to the central queue with their original
// arrival stamps. The kills themselves surface through the engine fault
// ledger (serving::Engine::Faults), which the fleet drains into
// FleetServeResult::chaos_log; Apply() reports nothing on its own.
#include <algorithm>
#include <string>
#include <utility>

#include "chaos/injectors.h"
#include "common/rng.h"

namespace kairos::chaos {
namespace {

class InstanceDeathInjector final : public ChaosInjector {
 public:
  explicit InstanceDeathInjector(InstanceDeathOptions options)
      : options_(options) {}

  std::string Name() const override { return "INSTANCE_DEATH"; }

  Status Arm(const ChaosSchedule& schedule) override {
    if (options_.rate_per_hour < 0.0) {
      return Status::InvalidArgument(
          "INSTANCE_DEATH: rate_per_hour must be >= 0, got " +
          std::to_string(options_.rate_per_hour));
    }
    if (options_.model != kAllModels &&
        options_.model >= schedule.num_models) {
      return Status::InvalidArgument(
          "INSTANCE_DEATH targets model index " +
          std::to_string(options_.model) + ", but the served plan has " +
          std::to_string(schedule.num_models) + " models");
    }
    timeline_.clear();
    next_ = 0;
    const double rate_per_s = options_.rate_per_hour / 3600.0;
    if (rate_per_s <= 0.0) return Status::Ok();  // armed, but a no-op
    const std::uint64_t base_seed =
        options_.seed != 0 ? options_.seed : schedule.seed ^ 0x44454144ULL;
    for (std::size_t j = 0; j < schedule.num_models; ++j) {
      if (options_.model != kAllModels && options_.model != j) continue;
      Rng rng(base_seed + 0x9E3779B97F4A7C15ULL * (j + 1));
      for (Time t = rng.Exponential(rate_per_s); t < schedule.duration_s;
           t += rng.Exponential(rate_per_s)) {
        timeline_.push_back({t, j});
      }
    }
    std::sort(timeline_.begin(), timeline_.end());
    if (options_.max_faults > 0 && timeline_.size() > options_.max_faults) {
      timeline_.resize(options_.max_faults);
    }
    return Status::Ok();
  }

  std::vector<Time> FaultTimes() const override {
    std::vector<Time> times;
    times.reserve(timeline_.size());
    for (const auto& [t, j] : timeline_) times.push_back(t);
    return times;
  }

  std::vector<ChaosEvent> Apply(Time now, ChaosTarget& target) override {
    for (; next_ < timeline_.size() && timeline_[next_].first <= now + 1e-9;
         ++next_) {
      // The kill is synchronous; the engine fault ledger records it (with
      // the requeue count), so no event is duplicated here.
      target.Kill(timeline_[next_].second, 1);
    }
    return {};
  }

 private:
  InstanceDeathOptions options_;
  /// (time, model) deaths, sorted; rebuilt by every Arm().
  std::vector<std::pair<Time, std::size_t>> timeline_;
  std::size_t next_ = 0;  ///< first timeline entry not yet applied
};

const ChaosRegistrar kInstanceDeath(
    ChaosInfo{"INSTANCE_DEATH",
              "abrupt Poisson instance kills (rate_per_hour), no notice, "
              "no discount; max_faults 0 = unbounded, model -1 targets "
              "every model, seed 0 derives from the run seed",
              {{"rate_per_hour", 10.0},
               {"model", -1.0},
               {"max_faults", 0.0},
               {"seed", 0.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<ChaosInjector>> {
      InstanceDeathOptions options;
      options.rate_per_hour = knobs.at("rate_per_hour");
      if (options.rate_per_hour < 0.0) {
        return Status::InvalidArgument(
            "chaos injector INSTANCE_DEATH: rate_per_hour must be >= 0");
      }
      const double max_faults = knobs.at("max_faults");
      if (max_faults < 0.0) {
        return Status::InvalidArgument(
            "chaos injector INSTANCE_DEATH: max_faults must be >= 0");
      }
      options.max_faults = static_cast<std::size_t>(max_faults);
      const double model = knobs.at("model");
      options.model =
          model < 0.0 ? kAllModels : static_cast<std::size_t>(model);
      options.seed = static_cast<std::uint64_t>(knobs.at("seed"));
      return MakeInstanceDeath(options);
    });

}  // namespace

std::unique_ptr<ChaosInjector> MakeInstanceDeath(
    InstanceDeathOptions options) {
  return std::make_unique<InstanceDeathInjector>(options);
}

}  // namespace kairos::chaos
