#include "chaos/injector.h"

#include <utility>

#include "common/strings.h"

namespace kairos::chaos {

const char* ChaosEventName(ChaosEventKind kind) {
  switch (kind) {
    case ChaosEventKind::kPreemptionNotice: return "PREEMPTION_NOTICE";
    case ChaosEventKind::kPreemption: return "PREEMPTION";
    case ChaosEventKind::kInstanceDeath: return "INSTANCE_DEATH";
    case ChaosEventKind::kNetDegrade: return "NET_DEGRADE";
    case ChaosEventKind::kNetRestore: return "NET_RESTORE";
    case ChaosEventKind::kDomainOutage: return "DOMAIN_OUTAGE";
  }
  return "UNKNOWN";
}

ChaosRegistry& ChaosRegistry::Global() {
  static ChaosRegistry* registry = new ChaosRegistry();
  return *registry;
}

Status ChaosRegistry::Register(ChaosInfo info, ChaosBuilder builder) {
  const std::string canonical = policy::CanonicalSchemeName(info.name);
  if (canonical.empty()) {
    return Status::InvalidArgument("chaos registration with empty name");
  }
  if (builder == nullptr) {
    return Status::InvalidArgument("chaos injector " + canonical +
                                   " registered without a builder");
  }
  info.name = canonical;
  const auto [it, inserted] =
      entries_.emplace(canonical, Entry{std::move(info), std::move(builder)});
  if (!inserted) {
    return Status::InvalidArgument("chaos injector " + it->first +
                                   " registered twice");
  }
  return Status::Ok();
}

std::vector<std::string> ChaosRegistry::ListNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

bool ChaosRegistry::Contains(const std::string& name) const {
  return entries_.count(policy::CanonicalSchemeName(name)) > 0;
}

StatusOr<ChaosRegistry::Entry> ChaosRegistry::Find(
    const std::string& name) const {
  const auto it = entries_.find(policy::CanonicalSchemeName(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown chaos injector \"" + name +
                            "\"; registered injectors: " +
                            JoinComma(ListNames()));
  }
  return it->second;
}

StatusOr<ChaosInfo> ChaosRegistry::Info(const std::string& name) const {
  auto entry = Find(name);
  if (!entry.ok()) return entry.status();
  return entry->info;
}

StatusOr<std::unique_ptr<ChaosInjector>> ChaosRegistry::Build(
    const std::string& name, const KnobMap& overrides) const {
  auto entry = Find(name);
  if (!entry.ok()) return entry.status();
  KnobMap knobs = entry->info.knobs;
  for (const auto& [knob, value] : overrides) {
    const auto it = knobs.find(knob);
    if (it == knobs.end()) {
      std::vector<std::string> declared;
      declared.reserve(knobs.size());
      for (const auto& [k, v] : knobs) declared.push_back(k);
      return Status::InvalidArgument(
          "chaos injector " + entry->info.name + " has no knob \"" + knob +
          "\"; declared knobs: " +
          (declared.empty() ? "(none)" : JoinComma(declared)));
    }
    it->second = value;
  }
  return entry->builder(knobs);
}

}  // namespace kairos::chaos
