// Direct construction of the built-in chaos injectors. Most callers
// should build by name through ChaosRegistry (chaos/injector.h); these
// factories exist for code that composes fault plans programmatically —
// COMPOSITE over a custom injector set, scripted timelines pinning exact
// scenarios in tests, or benches wiring a cloud::SpotMarket directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "chaos/injector.h"
#include "rpc/netem.h"

namespace kairos::chaos {

/// "SPOT_PREEMPTION" parameters.
struct SpotPreemptionOptions {
  /// The market the targeted models rent from: discount on billed spend
  /// (flat or curve-shaped — see SpotMarket's curve knobs), Poisson
  /// reclamation intensity, notice window.
  cloud::SpotMarket market{0.35, 30.0, 2.0, 0.0, 0.0, 0.0, 0.0, {}};
  /// Probability that a reclamation is *correlated*: instead of one
  /// instance, the provider reclaims a whole sampled failure domain
  /// (ChaosTarget::PreemptDomain). 0 (the default) reproduces the
  /// uncorrelated PR 6 timelines draw-for-draw.
  double correlation = 0.0;
  /// Served-plan model index to target; kAllModels = every model (each
  /// gets its own independent reclamation timeline).
  std::size_t model = kAllModels;
  /// Fault-timeline seed; 0 = derive from the run's ChaosSchedule seed.
  std::uint64_t seed = 0;
};
std::unique_ptr<ChaosInjector> MakeSpotPreemption(
    SpotPreemptionOptions options = {});

/// "DOMAIN_OUTAGE" parameters: rack/AZ-scale correlated loss. Each fault
/// samples one failure domain of the targeted model and reclaims *every*
/// assignable instance in it at once (the engine spares one survivor when
/// the domain holds the whole deployment).
struct DomainOutageOptions {
  /// Expected domain outages per hour per targeted model.
  double rate_per_hour = 2.0;
  /// Warning before the hard kills; 0 = abrupt (KillDomain).
  double notice_s = 0.0;
  std::size_t model = kAllModels;
  /// Fault-timeline seed; 0 = derive from the run's ChaosSchedule seed.
  std::uint64_t seed = 0;
};
std::unique_ptr<ChaosInjector> MakeDomainOutage(
    DomainOutageOptions options = {});

/// "INSTANCE_DEATH" parameters.
struct InstanceDeathOptions {
  /// Expected abrupt deaths per hour per targeted model.
  double rate_per_hour = 10.0;
  std::size_t model = kAllModels;
  /// Cap on total kills across the run; 0 = unbounded.
  std::size_t max_faults = 0;
  /// Fault-timeline seed; 0 = derive from the run's ChaosSchedule seed.
  std::uint64_t seed = 0;
};
std::unique_ptr<ChaosInjector> MakeInstanceDeath(
    InstanceDeathOptions options = {});

/// "NET_DEGRADE" parameters.
struct NetDegradeOptions {
  double start_s = 0.0;  ///< when the degraded fabric goes in
  double end_s = 0.0;    ///< when it is restored; 0 = the horizon
  /// The degraded fabric (validated at Arm through NetworkModel::Validate).
  double base_us = 2000.0;
  double jitter_sigma = 0.5;
  double loss_prob = 0.05;
  std::size_t model = kAllModels;
};
std::unique_ptr<ChaosInjector> MakeNetDegrade(NetDegradeOptions options = {});

/// "COMPOSITE": arms every child on the same schedule, merges their fault
/// timelines and applies them in child order at each barrier. The first
/// child with a spot market for a model prices that model's spend.
std::unique_ptr<ChaosInjector> MakeCompositeChaos(
    std::vector<std::unique_ptr<ChaosInjector>> children);

/// One step of a scripted chaos timeline.
struct ScriptedFault {
  double time_s = 0.0;
  /// What to do: kPreemptionNotice (Preempt), kInstanceDeath (Kill),
  /// kDomainOutage (PreemptDomain / KillDomain by notice_s), kNetDegrade,
  /// kNetRestore. kPreemption is invalid here — the hard kill follows the
  /// notice automatically.
  ChaosEventKind kind = ChaosEventKind::kInstanceDeath;
  std::size_t model = 0;       ///< served-plan model index; kAllModels = every model
  std::size_t count = 1;       ///< instances (notice / kill steps)
  double notice_s = 0.0;       ///< kPreemptionNotice / kDomainOutage
  rpc::NetworkModel net;       ///< kNetDegrade only
  std::size_t domain = 0;      ///< kDomainOutage only: failure domain index
};

/// "SCRIPTED": replays a hand-written fault list (sorted by time at Arm).
/// Programmatic-only — scripts are not knob-expressible — and the way
/// tests pin exact chaos scenarios. An optional `market` prices every
/// model's spend (scripted preemptions model a spot fleet).
std::unique_ptr<ChaosInjector> MakeScriptedChaos(
    std::vector<ScriptedFault> script,
    cloud::SpotMarket market = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, {}});

}  // namespace kairos::chaos
