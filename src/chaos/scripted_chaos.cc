// "SCRIPTED": replays a hand-written fault list. No randomness at all —
// the script *is* the timeline — which makes it the tool for tests that
// pin an exact chaos scenario ("kill instance 2 of RM2 at t=3.5s, degrade
// the fabric at 5s, restore at 8s") and for benches reproducing a
// specific documented incident. Registry-built injectors can't express a
// script, so this one is programmatic-only (MakeScriptedChaos).
#include <algorithm>
#include <string>
#include <utility>

#include "chaos/injectors.h"
#include "common/strings.h"

namespace kairos::chaos {
namespace {

class ScriptedChaos final : public ChaosInjector {
 public:
  ScriptedChaos(std::vector<ScriptedFault> script, cloud::SpotMarket market)
      : script_(std::move(script)), market_(market) {}

  std::string Name() const override { return "SCRIPTED"; }

  Status Arm(const ChaosSchedule& schedule) override {
    const Status market = market_.Validate();
    if (!market.ok()) {
      return Status(market.code(), "SCRIPTED: " + market.message());
    }
    for (const ScriptedFault& fault : script_) {
      if (fault.time_s < 0.0) {
        return Status::InvalidArgument(
            "SCRIPTED: fault scheduled at negative time " +
            FormatNumber(fault.time_s) + "s");
      }
      if (fault.kind == ChaosEventKind::kPreemption) {
        return Status::InvalidArgument(
            "SCRIPTED: kPreemption is not scriptable; script the "
            "kPreemptionNotice and the hard kill follows notice_s later");
      }
      if (fault.model != kAllModels && fault.model >= schedule.num_models) {
        return Status::InvalidArgument(
            "SCRIPTED: fault at " + FormatNumber(fault.time_s) +
            "s targets model index " + std::to_string(fault.model) +
            ", but the served plan has " +
            std::to_string(schedule.num_models) + " models");
      }
      if ((fault.kind == ChaosEventKind::kPreemptionNotice ||
           fault.kind == ChaosEventKind::kInstanceDeath) &&
          fault.count == 0) {
        return Status::InvalidArgument(
            "SCRIPTED: fault at " + FormatNumber(fault.time_s) +
            "s asks for zero instances");
      }
      if (fault.notice_s < 0.0) {
        return Status::InvalidArgument(
            "SCRIPTED: fault at " + FormatNumber(fault.time_s) +
            "s has negative notice_s");
      }
    }
    std::stable_sort(script_.begin(), script_.end(),
                     [](const ScriptedFault& a, const ScriptedFault& b) {
                       return a.time_s < b.time_s;
                     });
    next_ = 0;
    return Status::Ok();
  }

  std::vector<Time> FaultTimes() const override {
    std::vector<Time> times;
    times.reserve(script_.size());
    for (const ScriptedFault& fault : script_) times.push_back(fault.time_s);
    return times;
  }

  std::vector<ChaosEvent> Apply(Time now, ChaosTarget& target) override {
    std::vector<ChaosEvent> events;
    for (; next_ < script_.size() && script_[next_].time_s <= now + 1e-9;
         ++next_) {
      const ScriptedFault& fault = script_[next_];
      for (std::size_t j = 0; j < target.NumModels(); ++j) {
        if (fault.model != kAllModels && fault.model != j) continue;
        switch (fault.kind) {
          case ChaosEventKind::kPreemptionNotice: {
            const std::size_t noticed =
                target.Preempt(j, fault.count, fault.notice_s);
            if (noticed == 0) break;  // last assignable instance spared
            ChaosEvent event;
            event.time = fault.time_s;
            event.kind = ChaosEventKind::kPreemptionNotice;
            event.model = j;
            event.instances = noticed;
            event.detail = "scripted reclamation notice; hard kill in " +
                           FormatNumber(fault.notice_s) + "s";
            events.push_back(std::move(event));
            break;
          }
          case ChaosEventKind::kInstanceDeath:
            // The kill surfaces through the engine fault ledger.
            target.Kill(j, fault.count);
            break;
          case ChaosEventKind::kDomainOutage: {
            const std::size_t lost =
                fault.notice_s > 0.0
                    ? target.PreemptDomain(j, fault.domain, fault.notice_s)
                    : target.KillDomain(j, fault.domain);
            if (lost == 0) break;  // empty domain, or survivor spared
            ChaosEvent event;
            event.time = fault.time_s;
            event.kind = ChaosEventKind::kDomainOutage;
            event.model = j;
            event.instances = lost;
            event.detail =
                "scripted outage of failure domain " +
                std::to_string(fault.domain) + " (" + std::to_string(lost) +
                " instance" + (lost == 1 ? "" : "s") +
                (fault.notice_s > 0.0
                     ? "; hard kill in " + FormatNumber(fault.notice_s) + "s)"
                     : ", abrupt)");
            events.push_back(std::move(event));
            break;
          }
          case ChaosEventKind::kNetDegrade: {
            target.DegradeNetwork(j, fault.net);
            ChaosEvent event;
            event.time = fault.time_s;
            event.kind = ChaosEventKind::kNetDegrade;
            event.model = j;
            event.detail = "scripted fabric degradation: base " +
                           FormatNumber(fault.net.base_us()) +
                           "us, jitter sigma " +
                           FormatNumber(fault.net.jitter_sigma()) +
                           ", loss " + FormatNumber(fault.net.loss_prob());
            events.push_back(std::move(event));
            break;
          }
          case ChaosEventKind::kNetRestore: {
            target.RestoreNetwork(j);
            ChaosEvent event;
            event.time = fault.time_s;
            event.kind = ChaosEventKind::kNetRestore;
            event.model = j;
            event.detail = "scripted fabric restore";
            events.push_back(std::move(event));
            break;
          }
          case ChaosEventKind::kPreemption:
            break;  // rejected by Arm()
        }
      }
    }
    return events;
  }

  const cloud::SpotMarket* Market(std::size_t model) const override {
    (void)model;
    // discount 1.0 means "on-demand pricing": no market to quote.
    if (market_.discount >= 1.0) return nullptr;
    return &market_;
  }

 private:
  std::vector<ScriptedFault> script_;  ///< sorted by time at Arm()
  cloud::SpotMarket market_;
  std::size_t next_ = 0;  ///< first script entry not yet applied
};

}  // namespace

std::unique_ptr<ChaosInjector> MakeScriptedChaos(
    std::vector<ScriptedFault> script, cloud::SpotMarket market) {
  return std::make_unique<ScriptedChaos>(std::move(script), market);
}

}  // namespace kairos::chaos
