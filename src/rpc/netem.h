// Network delay model for the in-process RPC fabric that stands in for the
// paper's gRPC transport (Sec. 6). One-way delays are a base latency plus
// log-normal jitter — the standard shape of intra-region cloud RTTs.
#pragma once

#include "common/rng.h"
#include "common/time.h"

namespace kairos::rpc {

/// Samples one-way network delays.
class NetworkModel {
 public:
  /// `base_us` = deterministic one-way delay; `jitter_sigma` = sigma of the
  /// log-normal multiplicative jitter (0 = deterministic network).
  NetworkModel(double base_us = 20.0, double jitter_sigma = 0.0);

  /// One-way delay in simulator seconds.
  Time SampleDelay(Rng& rng) const;

  double base_us() const { return base_us_; }

 private:
  double base_us_;
  double jitter_sigma_;
};

}  // namespace kairos::rpc
