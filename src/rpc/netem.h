// Network delay model for the in-process RPC fabric that stands in for the
// paper's gRPC transport (Sec. 6). One-way delays are a base latency plus
// log-normal jitter — the standard shape of intra-region cloud RTTs — and
// an optional packet-loss probability: each lost transmission costs one
// retransmission timeout (a multiple of the base delay) before the retry,
// so lossy links show the heavy latency tail netem produces on real NICs.
#pragma once

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"

namespace kairos::rpc {

/// Samples one-way network delays.
class NetworkModel {
 public:
  /// kInvalidArgument for a negative base/jitter or a loss probability
  /// outside [0, 1). The throwing constructor routes through this, so
  /// callers can pre-validate knob-derived parameters without try/catch.
  static Status Validate(double base_us, double jitter_sigma,
                         double loss_prob = 0.0);

  /// `base_us` = deterministic one-way delay; `jitter_sigma` = sigma of the
  /// log-normal multiplicative jitter (0 = deterministic network);
  /// `loss_prob` = per-transmission loss probability in [0, 1). Throws
  /// std::invalid_argument when Validate() rejects the parameters.
  NetworkModel(double base_us = 20.0, double jitter_sigma = 0.0,
               double loss_prob = 0.0);

  /// One-way delay in simulator seconds, retransmission penalties
  /// included. Deterministic per `rng` stream: the same seed replays the
  /// identical delay/loss sequence (tests/rpc_test.cc). A loss-free model
  /// draws nothing for loss, so adding the knob leaves pre-existing RNG
  /// streams untouched.
  Time SampleDelay(Rng& rng) const;

  double base_us() const { return base_us_; }
  double jitter_sigma() const { return jitter_sigma_; }
  double loss_prob() const { return loss_prob_; }

 private:
  double base_us_;
  double jitter_sigma_;
  double loss_prob_;
};

}  // namespace kairos::rpc
