#include "rpc/netem.h"

#include <cmath>
#include <stdexcept>

namespace kairos::rpc {

NetworkModel::NetworkModel(double base_us, double jitter_sigma)
    : base_us_(base_us), jitter_sigma_(jitter_sigma) {
  if (base_us < 0.0 || jitter_sigma < 0.0) {
    throw std::invalid_argument("NetworkModel: negative parameter");
  }
}

Time NetworkModel::SampleDelay(Rng& rng) const {
  double us = base_us_;
  if (jitter_sigma_ > 0.0) {
    us *= rng.LogNormal(0.0, jitter_sigma_);
  }
  return us * 1e-6;
}

}  // namespace kairos::rpc
