#include "rpc/netem.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace kairos::rpc {
namespace {

/// Retransmission timeout as a multiple of the base one-way delay: the
/// sender waits about two RTTs before giving up on an unacknowledged
/// transmission, the classic minimum-RTO shape.
constexpr double kRetransmitTimeoutFactor = 4.0;

}  // namespace

Status NetworkModel::Validate(double base_us, double jitter_sigma,
                              double loss_prob) {
  if (!(base_us >= 0.0)) {
    return Status::InvalidArgument("NetworkModel: base_us must be >= 0, got " +
                                   std::to_string(base_us));
  }
  if (!(jitter_sigma >= 0.0)) {
    return Status::InvalidArgument(
        "NetworkModel: jitter_sigma must be >= 0, got " +
        std::to_string(jitter_sigma));
  }
  if (!(loss_prob >= 0.0) || loss_prob >= 1.0) {
    return Status::InvalidArgument(
        "NetworkModel: loss_prob must be in [0, 1), got " +
        std::to_string(loss_prob));
  }
  return Status::Ok();
}

NetworkModel::NetworkModel(double base_us, double jitter_sigma,
                           double loss_prob)
    : base_us_(base_us), jitter_sigma_(jitter_sigma), loss_prob_(loss_prob) {
  const Status status = Validate(base_us, jitter_sigma, loss_prob);
  if (!status.ok()) throw std::invalid_argument(status.message());
}

Time NetworkModel::SampleDelay(Rng& rng) const {
  double us = base_us_;
  if (jitter_sigma_ > 0.0) {
    us *= rng.LogNormal(0.0, jitter_sigma_);
  }
  if (loss_prob_ > 0.0) {
    // Geometric retransmits: every lost copy burns one timeout before the
    // (independently lossy) retry. loss_prob < 1 keeps this finite.
    while (rng.Bernoulli(loss_prob_)) {
      us += kRetransmitTimeoutFactor * base_us_;
    }
  }
  return us * 1e-6;
}

}  // namespace kairos::rpc
