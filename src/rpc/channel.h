// In-process message channel over the discrete-event simulator: the
// controller→instance transport. Provides one-way sends and request/reply
// calls, each hop delayed by the network model. Replaces gRPC in this
// reproduction; the Sec. 6 controller-overhead claim (matching + network
// round trip ≪ 1 ms) is benchmarked on top of it.
#pragma once

#include <cstddef>
#include <functional>

#include "rpc/netem.h"
#include "sim/simulator.h"

namespace kairos::rpc {

/// Transport statistics.
struct ChannelStats {
  std::size_t messages = 0;   ///< one-way deliveries (a Call counts two)
  Time total_delay = 0.0;     ///< summed network time
};

/// A bidirectional channel between two simulated endpoints.
class Channel {
 public:
  /// `sim` must outlive the channel.
  Channel(sim::Simulator& sim, NetworkModel network, Rng rng);

  /// Delivers `on_deliver` at the peer after one network hop.
  void Send(sim::EventFn on_deliver);

  /// Request/response: runs `server` at the peer after the forward hop,
  /// then `on_reply` back at the caller after the return hop.
  void Call(sim::EventFn server, sim::EventFn on_reply);

  const ChannelStats& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  NetworkModel network_;
  Rng rng_;
  ChannelStats stats_;
};

}  // namespace kairos::rpc
