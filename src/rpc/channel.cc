#include "rpc/channel.h"

namespace kairos::rpc {

Channel::Channel(sim::Simulator& sim, NetworkModel network, Rng rng)
    : sim_(sim), network_(network), rng_(rng) {}

void Channel::Send(sim::EventFn on_deliver) {
  const Time delay = network_.SampleDelay(rng_);
  ++stats_.messages;
  stats_.total_delay += delay;
  sim_.After(delay, std::move(on_deliver));
}

void Channel::Call(sim::EventFn server, sim::EventFn on_reply) {
  Send([this, server = std::move(server), on_reply = std::move(on_reply)]() mutable {
    server();
    Send(std::move(on_reply));
  });
}

}  // namespace kairos::rpc
