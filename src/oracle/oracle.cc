#include "oracle/oracle.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "common/rng.h"
#include "common/time.h"

namespace kairos::oracle {
namespace {

struct Slot {
  Time free_at;
  std::size_t instance;
  bool operator>(const Slot& other) const { return free_at > other.free_at; }
};

}  // namespace

double OracleThroughput(const cloud::Catalog& catalog,
                        const cloud::Config& config,
                        const latency::LatencyModel& truth, double qos_ms,
                        std::vector<int> batches) {
  if (batches.empty()) return 0.0;
  std::sort(batches.begin(), batches.end());

  // Instance table: type + QoS-feasible region.
  struct Node {
    cloud::TypeId type;
    bool is_base;
    int max_batch;  // largest batch servable within QoS
  };
  std::vector<Node> nodes;
  for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
    const int max_batch = truth.MaxQosBatch(t, qos_ms);
    for (int k = 0; k < config.Count(t); ++k) {
      nodes.push_back(Node{t, catalog[t].is_base, max_batch});
    }
  }
  if (nodes.empty()) return 0.0;

  // Earliest-free-instance event loop over the sorted sequence: base nodes
  // consume from the large end, auxiliaries from the small end (when it
  // still fits their QoS region). `lo`/`hi` delimit the unserved middle.
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> pq;
  for (std::size_t i = 0; i < nodes.size(); ++i) pq.push(Slot{0.0, i});

  std::size_t lo = 0;
  std::size_t hi = batches.size();  // exclusive
  Time makespan = 0.0;
  std::size_t served = 0;
  while (lo < hi && !pq.empty()) {
    const Slot slot = pq.top();
    pq.pop();
    const Node& node = nodes[slot.instance];
    int batch = 0;
    if (node.is_base) {
      batch = batches[--hi];  // largest remaining
    } else {
      if (batches[lo] > node.max_batch) continue;  // retire this auxiliary
      batch = batches[lo++];  // smallest remaining
    }
    const Time serve = truth.Latency(node.type, batch);
    const Time finish = slot.free_at + serve;
    makespan = std::max(makespan, finish);
    ++served;
    pq.push(Slot{finish, slot.instance});
  }
  if (makespan <= 0.0 || served == 0) return 0.0;
  return static_cast<double>(served) / makespan;
}

double OracleThroughput(const cloud::Catalog& catalog,
                        const cloud::Config& config,
                        const latency::LatencyModel& truth, double qos_ms,
                        const workload::BatchDistribution& mix,
                        std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> batches(count);
  for (int& b : batches) b = mix.Sample(rng);
  return OracleThroughput(catalog, config, truth, qos_ms, std::move(batches));
}

OracleSearchResult OracleSearch(const cloud::Catalog& catalog,
                                const std::vector<cloud::Config>& configs,
                                const latency::LatencyModel& truth,
                                double qos_ms,
                                const workload::BatchDistribution& mix,
                                std::size_t count, std::uint64_t seed) {
  if (configs.empty()) {
    throw std::invalid_argument("OracleSearch: no configurations");
  }
  // One shared batch sample keeps the comparison apples-to-apples.
  Rng rng(seed);
  std::vector<int> batches(count);
  for (int& b : batches) b = mix.Sample(rng);

  OracleSearchResult result;
  result.per_config_qps.reserve(configs.size());
  for (const cloud::Config& c : configs) {
    const double qps =
        OracleThroughput(catalog, c, truth, qos_ms, batches);
    result.per_config_qps.push_back(qps);
    if (qps > result.best_qps) {
      result.best_qps = qps;
      result.best_config = c;
    }
  }
  return result;
}

}  // namespace kairos::oracle
