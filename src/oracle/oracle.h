// The ORCL reference scheme (Sec. 7): a practically-infeasible clairvoyant
// scheduler that knows the whole query mix in advance, sorts it by batch
// size, feeds base instances the largest remaining query and auxiliary
// instances the smallest, never queues, and never violates QoS. Its
// throughput upper-limits every real distribution mechanism and is the
// dashed reference line in Figs. 3, 9 and 14.
#pragma once

#include <vector>

#include "cloud/config.h"
#include "cloud/instance_type.h"
#include "latency/latency_model.h"
#include "workload/batch_dist.h"

namespace kairos::oracle {

/// Oracle throughput for one configuration serving the given batch mix.
/// `batches` is the clairvoyant query sequence (order irrelevant — the
/// oracle sorts). Returns queries/second with QoS respected by construction.
double OracleThroughput(const cloud::Catalog& catalog,
                        const cloud::Config& config,
                        const latency::LatencyModel& truth, double qos_ms,
                        std::vector<int> batches);

/// Draws `count` batches from the mix and evaluates OracleThroughput.
double OracleThroughput(const cloud::Catalog& catalog,
                        const cloud::Config& config,
                        const latency::LatencyModel& truth, double qos_ms,
                        const workload::BatchDistribution& mix,
                        std::size_t count, std::uint64_t seed);

/// Exhaustive oracle search: the config with the highest oracle throughput
/// among `configs`. This is how the paper hands the *competing* schemes
/// their best-possible configuration for free (Sec. 8.2).
struct OracleSearchResult {
  cloud::Config best_config;
  double best_qps = 0.0;
  /// Oracle QPS per input config, aligned with `configs`.
  std::vector<double> per_config_qps;
};
OracleSearchResult OracleSearch(const cloud::Catalog& catalog,
                                const std::vector<cloud::Config>& configs,
                                const latency::LatencyModel& truth,
                                double qos_ms,
                                const workload::BatchDistribution& mix,
                                std::size_t count, std::uint64_t seed);

}  // namespace kairos::oracle
