// Common result type for min-cost assignment solvers. The Kairos query
// distributor (Sec. 5.1) reduces query→instance mapping to rectangular
// min-cost bipartite matching: with m queries and n instances, exactly
// min(m, n) pairs are matched (Eq. 6-7).
#pragma once

#include <vector>

#include "common/matrix.h"

namespace kairos::assign {

/// Result of a rectangular assignment over an m x n cost matrix.
struct AssignmentResult {
  /// col_for_row[i] = matched column of row i, or -1 when unmatched
  /// (rows go unmatched only when m > n). Exactly min(m, n) entries >= 0.
  std::vector<int> col_for_row;

  /// Sum of costs over matched pairs.
  double total_cost = 0.0;

  /// Number of matched pairs (== min(m, n) for feasible problems).
  int matched = 0;
};

/// Validates that a result is a feasible matching for an m x n problem:
/// min(m,n) pairs, no column used twice. Used by tests and debug checks.
bool IsValidMatching(const AssignmentResult& result, std::size_t rows,
                     std::size_t cols);

}  // namespace kairos::assign
