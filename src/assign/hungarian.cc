#include "assign/hungarian.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace kairos::assign {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Potential-based Hungarian method for an n x m problem with n <= m,
// 1-indexed internally (the classical formulation).
std::vector<int> SolveWide(std::size_t n, std::size_t m,
                           const std::vector<double>& a) {
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<std::size_t> p(m + 1, 0), way(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = a[(i0 - 1) * m + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> col4row(n, -1);
  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) col4row[p[j] - 1] = static_cast<int>(j - 1);
  }
  return col4row;
}

}  // namespace

AssignmentResult SolveHungarian(const Matrix& cost) {
  const std::size_t m = cost.rows();
  const std::size_t n = cost.cols();
  AssignmentResult result;
  result.col_for_row.assign(m, -1);
  if (m == 0 || n == 0) return result;

  for (double c : cost.data()) {
    if (!std::isfinite(c)) {
      throw std::invalid_argument("SolveHungarian: non-finite cost");
    }
  }

  if (m <= n) {
    const std::vector<int> col4row = SolveWide(m, n, cost.data());
    for (std::size_t i = 0; i < m; ++i) {
      result.col_for_row[i] = col4row[i];
      result.total_cost += cost(i, static_cast<std::size_t>(col4row[i]));
      ++result.matched;
    }
  } else {
    const Matrix t = cost.Transposed();
    const std::vector<int> col4row = SolveWide(n, m, t.data());
    for (std::size_t j = 0; j < n; ++j) {
      const int i = col4row[j];
      result.col_for_row[static_cast<std::size_t>(i)] = static_cast<int>(j);
      result.total_cost += cost(static_cast<std::size_t>(i), j);
      ++result.matched;
    }
  }
  return result;
}

}  // namespace kairos::assign
