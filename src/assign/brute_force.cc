#include "assign/brute_force.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace kairos::assign {

AssignmentResult SolveBruteForce(const Matrix& cost) {
  const std::size_t m = cost.rows();
  const std::size_t n = cost.cols();
  AssignmentResult best;
  best.col_for_row.assign(m, -1);
  if (m == 0 || n == 0) return best;
  if (std::min(m, n) > 9) {
    throw std::invalid_argument("SolveBruteForce: problem too large");
  }

  best.total_cost = std::numeric_limits<double>::infinity();

  if (m <= n) {
    // Choose an ordered selection of m distinct columns: iterate over
    // permutations of all n columns but only read the first m — dedupe by
    // skipping permutations that only shuffle the tail.
    std::vector<int> cols(n);
    std::iota(cols.begin(), cols.end(), 0);
    std::vector<int> chosen(m);
    // Enumerate m-permutations recursively to avoid the tail-shuffle waste.
    std::vector<bool> used(n, false);
    double running = 0.0;
    auto recurse = [&](auto&& self, std::size_t row) -> void {
      if (row == m) {
        if (running < best.total_cost) {
          best.total_cost = running;
          for (std::size_t i = 0; i < m; ++i) best.col_for_row[i] = chosen[i];
        }
        return;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (used[j]) continue;
        used[j] = true;
        running += cost(row, j);
        chosen[row] = static_cast<int>(j);
        self(self, row + 1);
        running -= cost(row, j);
        used[j] = false;
      }
    };
    recurse(recurse, 0);
    best.matched = static_cast<int>(m);
  } else {
    const Matrix t = cost.Transposed();
    AssignmentResult transposed = SolveBruteForce(t);
    best.total_cost = transposed.total_cost;
    for (std::size_t j = 0; j < n; ++j) {
      const int i = transposed.col_for_row[j];
      best.col_for_row[static_cast<std::size_t>(i)] = static_cast<int>(j);
    }
    best.matched = transposed.matched;
  }
  return best;
}

}  // namespace kairos::assign
