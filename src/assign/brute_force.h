// Exhaustive assignment solver for property tests: enumerates every
// matching of min(m, n) pairs and returns the cheapest. Exponential —
// intended only for matrices with min(m, n) <= ~8.
#pragma once

#include "assign/assignment.h"

namespace kairos::assign {

/// Optimal rectangular assignment by enumeration; same contract as SolveJv.
/// Throws std::invalid_argument when min(rows, cols) > 9 (too large).
AssignmentResult SolveBruteForce(const Matrix& cost);

}  // namespace kairos::assign
