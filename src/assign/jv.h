// Jonker–Volgenant shortest-augmenting-path solver for dense rectangular
// min-cost assignment (Jonker & Volgenant 1987; the rectangular variant
// follows Crouse 2016, the same algorithm behind
// scipy.optimize.linear_sum_assignment that the paper's implementation
// calls). O(n^3) worst case, very fast in practice on the small matrices
// the Kairos controller builds (tens of queries x tens of instances).
#pragma once

#include "assign/assignment.h"

namespace kairos::assign {

/// Reusable scratch for SolveJv. A caller that solves one matching per
/// round (the Kairos policy) keeps a workspace alive so steady-state
/// solves perform zero heap allocations: every internal vector and the
/// result itself grow to the high-water problem size and stay there.
struct JvWorkspace {
  std::vector<double> u, v, shortest_path_costs;
  std::vector<int> path, col4row, row4col;
  std::vector<bool> sr, sc;
  std::vector<std::size_t> remaining;
  std::vector<double> transposed;  ///< scratch for the m > n case
  AssignmentResult result;
};

/// Solves min-cost rectangular assignment on a dense cost matrix. All costs
/// must be finite. Throws std::invalid_argument on non-finite costs.
AssignmentResult SolveJv(const Matrix& cost);

/// Allocation-free variant: scratch and result live in `ws`; the returned
/// reference is to ws.result and is invalidated by the next call.
const AssignmentResult& SolveJv(const Matrix& cost, JvWorkspace& ws);

}  // namespace kairos::assign
