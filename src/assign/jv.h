// Jonker–Volgenant shortest-augmenting-path solver for dense rectangular
// min-cost assignment (Jonker & Volgenant 1987; the rectangular variant
// follows Crouse 2016, the same algorithm behind
// scipy.optimize.linear_sum_assignment that the paper's implementation
// calls). O(n^3) worst case, very fast in practice on the small matrices
// the Kairos controller builds (tens of queries x tens of instances).
#pragma once

#include "assign/assignment.h"

namespace kairos::assign {

/// Solves min-cost rectangular assignment on a dense cost matrix. All costs
/// must be finite. Throws std::invalid_argument on non-finite costs.
AssignmentResult SolveJv(const Matrix& cost);

}  // namespace kairos::assign
