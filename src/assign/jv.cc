#include "assign/jv.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace kairos::assign {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One Dijkstra-style augmenting search from free row `cur_row` over an
// m x n cost slab (m <= n). Returns the sink column, or -1 if no path.
int AugmentingPath(std::size_t nc, const std::vector<double>& cost,
                   std::vector<double>& u, std::vector<double>& v,
                   std::vector<int>& path, const std::vector<int>& row4col,
                   std::vector<double>& shortest_path_costs, std::size_t i,
                   std::vector<bool>& sr, std::vector<bool>& sc,
                   std::vector<std::size_t>& remaining, double* p_min_val) {
  double min_val = 0.0;
  std::size_t num_remaining = nc;
  for (std::size_t it = 0; it < nc; ++it) {
    remaining[it] = nc - it - 1;
  }
  std::fill(sr.begin(), sr.end(), false);
  std::fill(sc.begin(), sc.end(), false);
  std::fill(shortest_path_costs.begin(), shortest_path_costs.end(), kInf);

  int sink = -1;
  while (sink == -1) {
    std::size_t index = static_cast<std::size_t>(-1);
    double lowest = kInf;
    sr[i] = true;
    for (std::size_t it = 0; it < num_remaining; ++it) {
      const std::size_t j = remaining[it];
      const double r = min_val + cost[i * nc + j] - u[i] - v[j];
      if (r < shortest_path_costs[j]) {
        path[j] = static_cast<int>(i);
        shortest_path_costs[j] = r;
      }
      // Prefer sink columns on ties for a shorter augmentation.
      if (shortest_path_costs[j] < lowest ||
          (shortest_path_costs[j] == lowest && row4col[j] == -1)) {
        lowest = shortest_path_costs[j];
        index = it;
      }
    }
    min_val = lowest;
    if (min_val == kInf) return -1;  // infeasible
    const std::size_t j = remaining[index];
    if (row4col[j] == -1) {
      sink = static_cast<int>(j);
    } else {
      i = static_cast<std::size_t>(row4col[j]);
    }
    sc[j] = true;
    remaining[index] = remaining[--num_remaining];
  }
  *p_min_val = min_val;
  return sink;
}

// Core solver for m <= n; scratch lives in (and resizes) `ws`. Returns
// ws.col4row.
const std::vector<int>& SolveWide(std::size_t nr, std::size_t nc,
                                  const std::vector<double>& cost,
                                  JvWorkspace& ws) {
  ws.u.assign(nr, 0.0);
  ws.v.assign(nc, 0.0);
  ws.shortest_path_costs.resize(nc);
  ws.path.assign(nc, -1);
  ws.col4row.assign(nr, -1);
  ws.row4col.assign(nc, -1);
  ws.sr.resize(nr);
  ws.sc.resize(nc);
  ws.remaining.resize(nc);
  std::vector<double>& u = ws.u;
  std::vector<double>& v = ws.v;
  std::vector<double>& shortest_path_costs = ws.shortest_path_costs;
  std::vector<int>& path = ws.path;
  std::vector<int>& col4row = ws.col4row;
  std::vector<int>& row4col = ws.row4col;
  std::vector<bool>& sr = ws.sr;
  std::vector<bool>& sc = ws.sc;
  std::vector<std::size_t>& remaining = ws.remaining;

  for (std::size_t cur_row = 0; cur_row < nr; ++cur_row) {
    double min_val = 0.0;
    const int sink =
        AugmentingPath(nc, cost, u, v, path, row4col, shortest_path_costs,
                       cur_row, sr, sc, remaining, &min_val);
    if (sink < 0) {
      throw std::runtime_error("SolveJv: infeasible cost matrix");
    }
    // Update dual variables.
    u[cur_row] += min_val;
    for (std::size_t i = 0; i < nr; ++i) {
      if (sr[i] && i != cur_row) {
        u[i] += min_val - shortest_path_costs[static_cast<std::size_t>(col4row[i])];
      }
    }
    for (std::size_t j = 0; j < nc; ++j) {
      if (sc[j]) v[j] -= min_val - shortest_path_costs[j];
    }
    // Augment along the alternating path back from the sink.
    int j = sink;
    while (true) {
      const int i = path[static_cast<std::size_t>(j)];
      row4col[static_cast<std::size_t>(j)] = i;
      std::swap(col4row[static_cast<std::size_t>(i)], j);
      if (i == static_cast<int>(cur_row)) break;
    }
  }
  return col4row;
}

}  // namespace

AssignmentResult SolveJv(const Matrix& cost) {
  JvWorkspace ws;
  return SolveJv(cost, ws);  // copies out of the local workspace
}

const AssignmentResult& SolveJv(const Matrix& cost, JvWorkspace& ws) {
  const std::size_t m = cost.rows();
  const std::size_t n = cost.cols();
  AssignmentResult& result = ws.result;
  result.col_for_row.assign(m, -1);
  result.total_cost = 0.0;
  result.matched = 0;
  if (m == 0 || n == 0) return result;

  for (double c : cost.data()) {
    if (!std::isfinite(c)) {
      throw std::invalid_argument("SolveJv: non-finite cost");
    }
  }

  // Degenerate shapes dominate saturated serving rounds (one idle
  // instance against a window of queries, or one queued query against
  // the fleet): the optimal matching is a plain argmin, so skip the dual
  // machinery. Scanning ascending with a strict < picks the lowest index
  // among ties — the same pair the full solver returns for these shapes
  // (its single augmenting search scans columns in descending order and
  // lets later, i.e. lower, indices win ties).
  if (m == 1 || n == 1) {
    const std::vector<double>& c = cost.data();
    std::size_t best = 0;
    for (std::size_t k = 1; k < m * n; ++k) {
      if (c[k] < c[best]) best = k;
    }
    if (m == 1) {
      result.col_for_row[0] = static_cast<int>(best);
    } else {
      result.col_for_row[best] = 0;
    }
    result.total_cost = c[best];
    result.matched = 1;
    return result;
  }

  if (m <= n) {
    const std::vector<int>& col4row = SolveWide(m, n, cost.data(), ws);
    for (std::size_t i = 0; i < m; ++i) {
      result.col_for_row[i] = col4row[i];
      result.total_cost += cost(i, static_cast<std::size_t>(col4row[i]));
      ++result.matched;
    }
  } else {
    // Transpose into workspace scratch, solve, invert the mapping;
    // surplus rows stay -1.
    ws.transposed.resize(m * n);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ws.transposed[j * m + i] = cost(i, j);
      }
    }
    const std::vector<int>& col4row = SolveWide(n, m, ws.transposed, ws);
    for (std::size_t j = 0; j < n; ++j) {
      const int i = col4row[j];
      result.col_for_row[static_cast<std::size_t>(i)] = static_cast<int>(j);
      result.total_cost += cost(static_cast<std::size_t>(i), j);
      ++result.matched;
    }
  }
  return result;
}

bool IsValidMatching(const AssignmentResult& result, std::size_t rows,
                     std::size_t cols) {
  if (result.col_for_row.size() != rows) return false;
  std::vector<bool> used(cols, false);
  int matched = 0;
  for (int j : result.col_for_row) {
    if (j < 0) continue;
    if (static_cast<std::size_t>(j) >= cols) return false;
    if (used[static_cast<std::size_t>(j)]) return false;
    used[static_cast<std::size_t>(j)] = true;
    ++matched;
  }
  return matched == static_cast<int>(std::min(rows, cols)) &&
         matched == result.matched;
}

}  // namespace kairos::assign
