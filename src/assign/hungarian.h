// Hungarian (Kuhn–Munkres) assignment solver with potentials. Slower in
// practice than the JV solver but completely independent code, used as a
// cross-checking reference implementation in tests (the paper cites the
// Hungarian algorithm as the classical baseline of JV, Sec. 5.1).
#pragma once

#include "assign/assignment.h"

namespace kairos::assign {

/// Solves min-cost rectangular assignment; same contract as SolveJv.
AssignmentResult SolveHungarian(const Matrix& cost);

}  // namespace kairos::assign
