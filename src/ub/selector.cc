#include "ub/selector.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace kairos::ub {

std::vector<RankedConfig> RankByUpperBound(
    const std::vector<cloud::Config>& configs,
    const std::vector<double>& upper_bounds) {
  if (configs.size() != upper_bounds.size()) {
    throw std::invalid_argument("RankByUpperBound: size mismatch");
  }
  std::vector<RankedConfig> ranked;
  ranked.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ranked.push_back(RankedConfig{configs[i], upper_bounds[i]});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedConfig& a, const RankedConfig& b) {
                     return a.upper_bound > b.upper_bound;
                   });
  return ranked;
}

SelectionResult SelectConfiguration(const std::vector<RankedConfig>& ranked,
                                    const cloud::Catalog& catalog) {
  if (ranked.empty()) {
    throw std::invalid_argument("SelectConfiguration: empty candidate list");
  }
  const cloud::TypeId base = catalog.BaseType();

  // Top-3 agreement on the base count → trust the #1 upper bound.
  const std::size_t top3 = std::min<std::size_t>(3, ranked.size());
  bool base_agrees = true;
  for (std::size_t i = 1; i < top3; ++i) {
    if (ranked[i].config.Count(base) != ranked[0].config.Count(base)) {
      base_agrees = false;
      break;
    }
  }
  if (base_agrees) {
    return SelectionResult{ranked[0].config, 0, false};
  }

  // Otherwise: min sum of squared distances among the top-10 (the config
  // closest to the cluster centroid of the promising region).
  const std::size_t top10 = std::min<std::size_t>(10, ranked.size());
  double best_sse = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < top10; ++i) {
    double sse = 0.0;
    for (std::size_t j = 0; j < top10; ++j) {
      if (i == j) continue;
      sse += ranked[i].config.SquaredDistance(ranked[j].config);
    }
    if (sse < best_sse) {
      best_sse = sse;
      best_idx = i;
    }
  }
  return SelectionResult{ranked[best_idx].config, best_idx, true};
}

}  // namespace kairos::ub
