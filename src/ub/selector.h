// Similarity-based configuration selection (Sec. 5.2, final step): a higher
// upper bound does not strictly imply higher throughput, so Kairos picks
// from the *region* of top-ranked candidates:
//   * if the top-3 upper-bound configs agree on the base-instance count,
//     take the #1 config;
//   * otherwise, among the top-10, take the config minimizing the sum of
//     squared Euclidean distances to the other nine (the cluster-centroid /
//     min-SSE criterion).
#pragma once

#include <cstddef>
#include <vector>

#include "cloud/config.h"
#include "cloud/instance_type.h"

namespace kairos::ub {

/// A configuration with its estimated upper bound.
struct RankedConfig {
  cloud::Config config;
  double upper_bound = 0.0;
};

/// Pairs configs with bounds and sorts descending by bound (stable, so
/// equal bounds keep enumeration order and results stay deterministic).
std::vector<RankedConfig> RankByUpperBound(
    const std::vector<cloud::Config>& configs,
    const std::vector<double>& upper_bounds);

/// Outcome of the similarity rule.
struct SelectionResult {
  cloud::Config chosen;
  std::size_t chosen_rank = 0;       ///< index into the ranked list
  bool used_distance_rule = false;   ///< false = top-3 agreement shortcut
};

/// Applies the Sec. 5.2 similarity rule to a (descending) ranked list.
/// Throws std::invalid_argument when `ranked` is empty.
SelectionResult SelectConfiguration(const std::vector<RankedConfig>& ranked,
                                    const cloud::Catalog& catalog);

}  // namespace kairos::ub
