// Throughput upper-bound estimation (Sec. 5.2): the analytic surrogate that
// lets Kairos rank every configuration under the budget without a single
// online evaluation. For a config with u base nodes and auxiliary types i
// with v_i nodes each:
//
//   C = Σ_i v_i·Q_a^i · (1 - f') / f'            (Eq. 14)
//   QPSmax = u·Q_b^{s+} / (1 - f')               if u·Q_b^{s+} <= C  (base
//                                                 is the bottleneck, Eq. 12)
//   QPSmax = Σ_i v_i·Q_a^i / f'
//            + (u·Q_b^{s+} - C)/(u·Q_b^{s+}) · u·Q_b   otherwise (Eq. 13)
//
// where s' is the largest QoS-feasible batch over the auxiliary types, f'
// the fraction of queries at or below s', Q_b / Q_b^{s+} the base node's
// standalone rate over all / over larger-than-s' queries, and Q_a^i each
// auxiliary node's rate over the small-query mass (the paper's max-(s, f)
// simplification for multiple auxiliary types).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "cloud/config.h"
#include "cloud/instance_type.h"
#include "latency/latency_model.h"
#include "workload/monitor.h"

namespace kairos::ub {

/// Raw Eq. 12/13/15 evaluation over pre-computed standalone rates.
/// `aux` holds (node count v_i, per-node rate Q_a^i) pairs. Exposed
/// separately so tests can reproduce the paper's Fig. 7 worked examples.
double UpperBoundGeneral(int u, double q_b, double q_b_splus,
                         std::span<const std::pair<int, double>> aux,
                         double f_prime);

/// Everything the estimator derived for one configuration; useful for
/// reports and for the Fig. 14 "UB" series.
struct UpperBoundBreakdown {
  double qps_max = 0.0;
  int s_prime = 0;          ///< largest auxiliary QoS-feasible batch
  double f_prime = 0.0;     ///< query fraction at or below s_prime
  double q_b = 0.0;         ///< base standalone rate, all queries
  double q_b_splus = 0.0;   ///< base standalone rate, queries > s_prime
  double aux_rate_sum = 0.0;///< Σ v_i·Q_a^i
  double c = 0.0;           ///< Eq. 14 intermediate
  bool base_bottleneck = false;  ///< which Eq. 15 branch fired
};

/// Upper-bound estimator bound to one (catalog, model, QoS) context.
class UpperBoundEstimator {
 public:
  UpperBoundEstimator(const cloud::Catalog& catalog,
                      const latency::LatencyModel& truth, double qos_ms);

  /// Full breakdown for one config given observed workload statistics.
  UpperBoundBreakdown Estimate(const cloud::Config& config,
                               const workload::QueryMonitor& monitor) const;

  /// Shortcut returning only QPSmax.
  double QpsMax(const cloud::Config& config,
                const workload::QueryMonitor& monitor) const {
    return Estimate(config, monitor).qps_max;
  }

  /// Estimates for a whole candidate list (the warmup step the paper times
  /// at "under 2 seconds for 1000 configurations").
  std::vector<double> EstimateAll(const std::vector<cloud::Config>& configs,
                                  const workload::QueryMonitor& monitor) const;

 private:
  const cloud::Catalog& catalog_;
  const latency::LatencyModel& truth_;
  double qos_ms_;
};

}  // namespace kairos::ub
