#include "ub/upper_bound.h"

#include <algorithm>
#include <stdexcept>

namespace kairos::ub {

double UpperBoundGeneral(int u, double q_b, double q_b_splus,
                         std::span<const std::pair<int, double>> aux,
                         double f_prime) {
  if (u <= 0) return 0.0;  // no base: the largest queries can never be QoS-met
  double aux_rate = 0.0;
  for (const auto& [v, q] : aux) aux_rate += v * q;

  if (aux_rate <= 0.0 || f_prime <= 0.0) {
    // No effective auxiliary capacity, or no query small enough for any
    // auxiliary: the pool degenerates to homogeneous base serving.
    return u * q_b;
  }
  if (f_prime >= 1.0) {
    // Every query fits the auxiliaries: both tiers run at full rate.
    return aux_rate + u * q_b;
  }

  const double base_splus_rate = u * q_b_splus;
  const double c = aux_rate * (1.0 - f_prime) / f_prime;  // Eq. 14
  if (base_splus_rate <= c) {
    return base_splus_rate / (1.0 - f_prime);  // Eq. 12: base bottleneck
  }
  const double slack_ratio = (base_splus_rate - c) / base_splus_rate;
  return aux_rate / f_prime + slack_ratio * u * q_b;  // Eq. 13
}

UpperBoundEstimator::UpperBoundEstimator(const cloud::Catalog& catalog,
                                         const latency::LatencyModel& truth,
                                         double qos_ms)
    : catalog_(catalog), truth_(truth), qos_ms_(qos_ms) {
  if (qos_ms <= 0.0) {
    throw std::invalid_argument("UpperBoundEstimator: qos_ms must be > 0");
  }
}

UpperBoundBreakdown UpperBoundEstimator::Estimate(
    const cloud::Config& config, const workload::QueryMonitor& monitor) const {
  if (config.NumTypes() != catalog_.size()) {
    throw std::invalid_argument("UpperBoundEstimator: config arity mismatch");
  }
  UpperBoundBreakdown out;
  const cloud::TypeId base = catalog_.BaseType();
  const int u = config.Count(base);

  // Largest QoS-feasible region across the auxiliary types present.
  int s_prime = 0;
  for (const cloud::TypeId t : catalog_.AuxiliaryTypes()) {
    if (config.Count(t) <= 0) continue;
    s_prime = std::max(s_prime, truth_.MaxQosBatch(t, qos_ms_));
  }
  out.s_prime = s_prime;
  out.f_prime = monitor.FractionAtOrBelow(s_prime);

  // Standalone per-node rates from the affine surface and the monitored
  // batch means: rate = 1000 ms / E[latency_ms].
  const latency::AffineLatency& base_curve = truth_.Curve(base);
  const double mean_all = std::max(1.0, monitor.MeanBatch());
  out.q_b = 1000.0 / (base_curve.base_ms + base_curve.per_item_ms * mean_all);
  const double mean_large = monitor.MeanBatchAbove(s_prime);
  out.q_b_splus =
      mean_large > 0.0
          ? 1000.0 / (base_curve.base_ms + base_curve.per_item_ms * mean_large)
          : out.q_b;

  const double mean_small = monitor.MeanBatchAtOrBelow(s_prime);
  std::vector<std::pair<int, double>> aux;
  for (const cloud::TypeId t : catalog_.AuxiliaryTypes()) {
    const int v = config.Count(t);
    if (v <= 0) continue;
    if (truth_.MaxQosBatch(t, qos_ms_) <= 0 || mean_small <= 0.0) {
      aux.emplace_back(v, 0.0);
      continue;
    }
    const latency::AffineLatency& curve = truth_.Curve(t);
    const double rate =
        1000.0 / (curve.base_ms + curve.per_item_ms * mean_small);
    aux.emplace_back(v, rate);
    out.aux_rate_sum += v * rate;
  }

  out.c = out.f_prime > 0.0
              ? out.aux_rate_sum * (1.0 - out.f_prime) / out.f_prime
              : 0.0;
  out.base_bottleneck =
      out.aux_rate_sum > 0.0 && out.f_prime > 0.0 && out.f_prime < 1.0 &&
      u * out.q_b_splus <= out.c;
  out.qps_max = UpperBoundGeneral(u, out.q_b, out.q_b_splus, aux, out.f_prime);
  return out;
}

std::vector<double> UpperBoundEstimator::EstimateAll(
    const std::vector<cloud::Config>& configs,
    const workload::QueryMonitor& monitor) const {
  std::vector<double> out;
  out.reserve(configs.size());
  for (const cloud::Config& c : configs) out.push_back(QpsMax(c, monitor));
  return out;
}

}  // namespace kairos::ub
