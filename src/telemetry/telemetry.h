// The telemetry plane's facade (DESIGN.md Sec. 13). A `Telemetry` owns
// one MetricRegistry and one TraceRecorder sharing the same shard layout:
// shard j (j < num_model_shards) belongs to fleet model j's engine, and
// one extra "fleet" shard carries the driving thread's barrier spans and
// fleet-wide gauges. All instrument names are pre-registered in Create()
// so the hot path never touches the registration path.
//
// Wiring: construct via Telemetry::Create(model_names), hand the pointer
// to Fleet::ServeAll through FleetServeOptions::telemetry. A null pointer
// disables everything — the instrumented code paths reduce to one branch
// and the run is bit-identical to an uninstrumented build (enforced by
// tests/telemetry_test.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace kairos::telemetry {

/// The handles one engine needs on its hot path: registry + tracer
/// pointers, the engine's shard index, and pre-registered metric ids.
/// Copyable POD-of-handles; the Telemetry outlives every holder.
struct EngineInstruments {
  MetricRegistry* metrics = nullptr;
  TraceRecorder* tracer = nullptr;
  std::size_t shard = 0;

  MetricId queries_offered = 0;   ///< counter: arrivals seen
  MetricId queries_rejected = 0;  ///< counter: admission-control rejects
  MetricId queries_shed = 0;      ///< counter: deadline load sheds
  MetricId queries_served = 0;    ///< counter: completions
  MetricId queue_depth = 0;       ///< gauge: central queue depth
  MetricId advance_wall_us = 0;   ///< histogram: wall µs per AdvanceTo
};

/// One registry snapshot taken at a ServeAll barrier.
struct BarrierSample {
  double sim_time = 0.0;       ///< simulated seconds at the barrier
  unsigned barrier_flags = 0;  ///< the barrier's kind bits (fleet.cc)
  MetricSnapshot metrics;
};

/// Construction knobs of a Telemetry plane.
struct TelemetryOptions {
  /// Ring capacity per shard; the newest events win (drop-oldest).
  std::size_t trace_events_per_shard = 4096;
};

class Telemetry {
 public:
  using Options = TelemetryOptions;

  /// `model_names` name the per-model shards (one per fleet model, fleet
  /// order); a final "fleet" shard is appended for the driving thread.
  /// kInvalidArgument when model_names is empty.
  static StatusOr<std::unique_ptr<Telemetry>> Create(
      std::vector<std::string> model_names,
      const TelemetryOptions& options = {});

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  TraceRecorder& tracer() { return tracer_; }
  const TraceRecorder& tracer() const { return tracer_; }

  /// Model shards precede the fleet shard.
  std::size_t num_model_shards() const { return num_model_shards_; }
  std::size_t fleet_shard() const { return num_model_shards_; }

  /// Hot-path handles for model shard `shard` (< num_model_shards()).
  EngineInstruments InstrumentsFor(std::size_t shard);

  // Pre-registered fleet-level instruments (written by the driving
  // thread; see each name's # HELP line in telemetry.cc).
  MetricId sim_pending_events() const { return sim_pending_events_; }
  MetricId chaos_faults() const { return chaos_faults_; }
  MetricId control_actions() const { return control_actions_; }
  MetricId barriers() const { return barriers_; }
  MetricId planner_trials() const { return planner_trials_; }
  MetricId trace_dropped() const { return trace_dropped_; }

  /// Clears metric cells, trace rings and drop counters so one plane can
  /// be reused across ServeAll runs. Registrations survive.
  void Reset();

 private:
  Telemetry(std::vector<std::string> shard_names,
            const TelemetryOptions& options, std::size_t num_model_shards);

  std::size_t num_model_shards_;
  MetricRegistry metrics_;
  TraceRecorder tracer_;

  // Engine instrument ids (shared across model shards; the shard index
  // selects the cells).
  MetricId queries_offered_ = 0;
  MetricId queries_rejected_ = 0;
  MetricId queries_shed_ = 0;
  MetricId queries_served_ = 0;
  MetricId queue_depth_ = 0;
  MetricId advance_wall_us_ = 0;
  // Fleet instrument ids.
  MetricId sim_pending_events_ = 0;
  MetricId chaos_faults_ = 0;
  MetricId control_actions_ = 0;
  MetricId barriers_ = 0;
  MetricId planner_trials_ = 0;
  MetricId trace_dropped_ = 0;
};

/// Snapshots the registry at ServeAll barriers into a bounded sample log
/// (FleetServeResult::telemetry_samples). Driving-thread only; every
/// AtBarrier call happens at quiescence (workers joined).
class TelemetrySink {
 public:
  /// `max_samples` bounds the log; once full, later barriers are counted
  /// in dropped_samples() instead of stored.
  explicit TelemetrySink(Telemetry* telemetry,
                         std::size_t max_samples = 4096);

  /// Records one barrier: refreshes the trace-drop gauge, snapshots the
  /// registry, appends a BarrierSample (or counts it dropped when full).
  void AtBarrier(double sim_time, unsigned barrier_flags);

  std::uint64_t dropped_samples() const { return dropped_; }

  /// Moves the sample log out (sink is left empty).
  std::vector<BarrierSample> TakeSamples();

 private:
  Telemetry* telemetry_;
  std::size_t max_samples_;
  std::vector<BarrierSample> samples_;
  std::uint64_t dropped_ = 0;
};

}  // namespace kairos::telemetry
