// Per-shard span tracing (DESIGN.md Sec. 13). Each shard owns a bounded
// ring buffer of trace events; when a ring fills, the oldest events are
// dropped (drop counter exposed per shard). Spans carry wall-clock
// timestamps in microseconds — telemetry is observational output only and
// never feeds back into simulated time, RNG, or results.
//
// Thread safety: each shard's ring is guarded by its own mutex. The
// common case is single-writer-per-shard (uncontended lock, spans are
// coarse — per engine advance, per barrier, per planner trial — so the
// lock is nowhere near the metrics hot path), but the mutex makes
// cross-thread emission safe where it does happen (batched planner
// evaluation with eval_threads > 1 emits trial spans from pool workers).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace kairos::telemetry {

/// One recorded event. `phase` follows the Chrome trace-event convention:
/// 'X' = complete span (ts + dur), 'i' = instant event (dur unused).
struct TraceEvent {
  std::string name;            ///< span / event name, e.g. "engine.advance"
  char phase = 'X';            ///< 'X' complete span, 'i' instant
  std::uint64_t ts_us = 0;     ///< wall-clock start, µs since recorder epoch
  std::uint64_t dur_us = 0;    ///< span duration in µs ('X' only)
  std::size_t shard = 0;       ///< owning shard (Chrome tid)
  /// Flat key/value args rendered into the Chrome event's "args" object
  /// (values are emitted as JSON strings).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Bounded per-shard span recorder. Construct with the shard names (same
/// order as the MetricRegistry's) and a per-shard capacity; each shard
/// keeps its newest `capacity` events and counts what it dropped.
class TraceRecorder {
 public:
  TraceRecorder(std::vector<std::string> shard_names,
                std::size_t events_per_shard);

  std::size_t num_shards() const { return shards_.size(); }
  const std::vector<std::string>& shard_names() const { return shard_names_; }
  std::size_t capacity_per_shard() const { return capacity_; }

  /// Current wall-clock time in µs since the recorder's construction.
  /// Span emitters call this once at open and once at close.
  std::uint64_t NowUs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records a complete span ('X'). `shard` must be < num_shards().
  void EmitSpan(std::size_t shard, std::string name, std::uint64_t ts_us,
                std::uint64_t dur_us,
                std::vector<std::pair<std::string, std::string>> args = {});

  /// Records an instant event ('i') stamped NowUs().
  void EmitInstant(std::size_t shard, std::string name,
                   std::vector<std::pair<std::string, std::string>> args = {});

  /// Events currently held for `shard`, oldest first.
  std::vector<TraceEvent> ShardEvents(std::size_t shard) const;

  /// All shards' events, oldest first within each shard.
  std::vector<TraceEvent> AllEvents() const;

  /// Events dropped (ring overflow) for `shard` since construction/Reset.
  std::uint64_t DroppedCount(std::size_t shard) const;

  /// Sum of DroppedCount over all shards.
  std::uint64_t TotalDropped() const;

  /// Clears every ring and drop counter; the epoch is left untouched so
  /// timestamps stay monotone across a Reset.
  void Reset();

 private:
  /// One shard's bounded ring: fixed-capacity vector + rotating head.
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;  ///< capacity-bounded storage
    std::size_t head = 0;          ///< next write position once full
    std::uint64_t dropped = 0;     ///< overwritten (drop-oldest) count
  };

  std::vector<std::string> shard_names_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Shard> shards_;
};

/// RAII helper: opens a span at construction, emits it at destruction.
/// Args may be attached any time before the scope closes.
class ScopedSpan {
 public:
  /// A null `recorder` makes the span a no-op (the disabled-telemetry
  /// path costs one branch).
  ScopedSpan(TraceRecorder* recorder, std::size_t shard, std::string name)
      : recorder_(recorder), shard_(shard), name_(std::move(name)),
        start_us_(recorder ? recorder->NowUs() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches one key/value arg to the span-to-be.
  void AddArg(std::string key, std::string value) {
    if (recorder_ != nullptr) {
      args_.emplace_back(std::move(key), std::move(value));
    }
  }

  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      const std::uint64_t end_us = recorder_->NowUs();
      recorder_->EmitSpan(shard_, std::move(name_), start_us_,
                          end_us - start_us_, std::move(args_));
    }
  }

 private:
  TraceRecorder* recorder_;
  std::size_t shard_;
  std::string name_;
  std::uint64_t start_us_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace kairos::telemetry
