// Exporters (DESIGN.md Sec. 13): render a TraceRecorder's events as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing, one
// track per shard) and a MetricSnapshot as Prometheus text exposition
// (# HELP / # TYPE lines, shard="..." labels, cumulative le= histogram
// buckets). Both are pure string builders — no I/O, no global state.
#pragma once

#include <string>

#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace kairos::telemetry {

/// Renders the recorder's events as Chrome trace-event JSON:
///   {"traceEvents": [...], "displayTimeUnit": "ms"}
/// Every shard becomes one track (pid 0, tid = shard index) named by a
/// thread_name metadata event; spans are ph "X" with µs ts/dur, instants
/// are ph "i" with scope "t". Strings are JSON-escaped.
std::string ExportChromeTrace(const TraceRecorder& recorder);

/// Writes ExportChromeTrace(recorder) to `path`. kInternal on I/O error.
Status WriteChromeTrace(const TraceRecorder& recorder,
                        const std::string& path);

/// Renders the snapshot as Prometheus text exposition format. Counters
/// and gauges emit one sample per shard (label shard="<name>"; shards
/// with duplicate names get shard="<name>#<index>" to keep series
/// distinct). Histograms emit the standard cumulative _bucket{le="..."}
/// series (merged over shards) with _sum and _count.
std::string ExportPrometheus(const MetricSnapshot& snapshot);

/// Writes ExportPrometheus(snapshot) to `path`. kInternal on I/O error.
Status WritePrometheus(const MetricSnapshot& snapshot,
                       const std::string& path);

/// JSON string escaping shared by the exporters (quotes, backslashes,
/// control characters). Exposed for tests.
std::string JsonEscape(const std::string& raw);

}  // namespace kairos::telemetry
