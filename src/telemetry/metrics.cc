#include "telemetry/metrics.h"

#include <algorithm>
#include <utility>

namespace kairos::telemetry {
namespace {

/// Doubles per cache line; shard slot arrays are padded to a multiple of
/// this so two shards' cells never share a line.
constexpr std::size_t kLineDoubles = 8;

bool IsPrometheusSafe(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

MetricRegistry::MetricRegistry(std::vector<std::string> shard_names)
    : shard_names_(std::move(shard_names)) {
  if (shard_names_.empty()) shard_names_.push_back("0");
  scalars_.resize(shard_names_.size());
  hists_.resize(shard_names_.size());
}

StatusOr<MetricId> MetricRegistry::RegisterEntry(Entry entry) {
  if (!IsPrometheusSafe(entry.name)) {
    return Status::InvalidArgument(
        "metric name \"" + entry.name +
        "\" is not Prometheus-safe ([a-zA-Z_:][a-zA-Z0-9_:]*)");
  }
  for (const Entry& existing : entries_) {
    if (existing.name == entry.name) {
      return Status::InvalidArgument(
          "metric \"" + entry.name + "\" is already registered as a " +
          std::string(MetricKindName(existing.kind)));
    }
  }
  if (entry.kind == MetricKind::kHistogram) {
    entry.slot = hists_.empty() ? 0 : hists_[0].size();
    for (std::vector<HistCells>& shard : hists_) {
      HistCells cells;
      cells.buckets.assign(entry.bounds.size() + 1, 0);
      shard.push_back(std::move(cells));
    }
  } else {
    entry.slot = scalar_slots_++;
    // Grow every shard's slot array, padded to a cache-line multiple so
    // two shards' hot cells never share a line.
    const std::size_t padded =
        ((scalar_slots_ + kLineDoubles - 1) / kLineDoubles) * kLineDoubles;
    for (std::vector<double>& shard : scalars_) shard.resize(padded, 0.0);
  }
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

StatusOr<MetricId> MetricRegistry::RegisterCounter(const std::string& name,
                                                   const std::string& help) {
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = MetricKind::kCounter;
  return RegisterEntry(std::move(entry));
}

StatusOr<MetricId> MetricRegistry::RegisterGauge(const std::string& name,
                                                 const std::string& help) {
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = MetricKind::kGauge;
  return RegisterEntry(std::move(entry));
}

StatusOr<MetricId> MetricRegistry::RegisterHistogram(
    const std::string& name, const std::string& help,
    std::vector<double> bounds) {
  if (bounds.empty()) {
    return Status::InvalidArgument("histogram \"" + name +
                                   "\" needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i] > bounds[i - 1])) {
      return Status::InvalidArgument(
          "histogram \"" + name +
          "\" bucket bounds must be strictly increasing");
    }
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = MetricKind::kHistogram;
  entry.bounds = std::move(bounds);
  return RegisterEntry(std::move(entry));
}

void MetricRegistry::Observe(MetricId id, std::size_t shard, double value) {
  const Entry& entry = entries_[id];
  HistCells& cells = hists_[shard][entry.slot];
  // First bucket whose upper bound holds the value; +Inf bucket otherwise.
  const auto it =
      std::lower_bound(entry.bounds.begin(), entry.bounds.end(), value);
  ++cells.buckets[static_cast<std::size_t>(it - entry.bounds.begin())];
  cells.sum += value;
  ++cells.count;
}

MetricSnapshot MetricRegistry::Snapshot() const {
  MetricSnapshot snapshot;
  snapshot.shard_names = shard_names_;
  snapshot.metrics.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricValue value;
    value.name = entry.name;
    value.help = entry.help;
    value.kind = entry.kind;
    if (entry.kind == MetricKind::kHistogram) {
      value.bounds = entry.bounds;
      value.bucket_counts.assign(entry.bounds.size() + 1, 0);
      for (std::size_t s = 0; s < hists_.size(); ++s) {
        const HistCells& cells = hists_[s][entry.slot];
        for (std::size_t b = 0; b < cells.buckets.size(); ++b) {
          value.bucket_counts[b] += cells.buckets[b];
        }
        value.sum += cells.sum;
        value.count += cells.count;
      }
      value.value = value.sum;
    } else {
      value.per_shard.reserve(scalars_.size());
      for (const std::vector<double>& shard : scalars_) {
        value.per_shard.push_back(shard[entry.slot]);
        value.value += shard[entry.slot];
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;
}

void MetricRegistry::Reset() {
  for (std::vector<double>& shard : scalars_) {
    std::fill(shard.begin(), shard.end(), 0.0);
  }
  for (std::vector<HistCells>& shard : hists_) {
    for (HistCells& cells : shard) {
      std::fill(cells.buckets.begin(), cells.buckets.end(), 0);
      cells.sum = 0.0;
      cells.count = 0;
    }
  }
}

}  // namespace kairos::telemetry
