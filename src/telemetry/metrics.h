// Sharded metrics registry (DESIGN.md Sec. 13): named counters, gauges
// and fixed-bucket histograms with per-shard accumulation. The hot path —
// Add / Set / Observe — takes no locks and touches exactly one shard's
// cells; merging happens only at Snapshot() time.
//
// Ownership model (the contract every instrumented layer relies on):
//
//   * each shard's cells are written by AT MOST ONE thread at a time.
//     Fleet::ServeAll maps shard j to model j's engine, which is advanced
//     by exactly one worker between barriers; the extra "fleet" shard is
//     written only by the driving thread.
//   * Snapshot() requires quiescence: every writer must have synchronized
//     with the snapshotting thread (the barrier join provides this). With
//     that contract the cells need no atomics and the registry imposes
//     zero cache-line contention between shards (cells are padded to
//     cache-line multiples per shard).
//   * registration (RegisterCounter / ...) must also be quiesced — do it
//     at setup, before instruments are hot.
//
// Telemetry is a pure observer: nothing here reads clocks or RNG, so an
// instrumented run's *results* are bit-identical to an uninstrumented one
// (tests/telemetry_test.cc asserts this field by field).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace kairos::telemetry {

/// Handle of one registered metric; index into the registry's tables.
using MetricId = std::size_t;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Human-readable kind name ("counter", "gauge", "histogram") — also the
/// exact token the Prometheus text exposition's # TYPE line uses.
const char* MetricKindName(MetricKind kind);

/// One metric's merged view in a snapshot.
struct MetricValue {
  std::string name;  ///< Prometheus-safe name ([a-zA-Z_:][a-zA-Z0-9_:]*)
  std::string help;  ///< one-line description (# HELP line)
  MetricKind kind = MetricKind::kCounter;
  /// Merged scalar: sum over shards (counters and gauges; gauges in this
  /// codebase are per-shard levels — queue depths, pending events — whose
  /// fleet-wide reading is their sum).
  double value = 0.0;
  /// Per-shard scalar values (counters and gauges), shard order.
  std::vector<double> per_shard;
  /// Histograms only: the registration-time upper bounds (strictly
  /// increasing; an implicit +Inf bucket follows the last bound).
  std::vector<double> bounds;
  /// Histograms only: merged observation counts, size bounds.size() + 1
  /// (the last entry is the +Inf bucket). Non-cumulative per bucket; the
  /// Prometheus exporter accumulates for its le= convention.
  std::vector<std::uint64_t> bucket_counts;
  double sum = 0.0;          ///< histograms: sum of observations
  std::uint64_t count = 0;   ///< histograms: number of observations
};

/// A merged, point-in-time view of every registered metric.
struct MetricSnapshot {
  std::vector<std::string> shard_names;  ///< label values, shard order
  std::vector<MetricValue> metrics;      ///< registration order
};

/// The registry. Cheap to construct; all storage is plain doubles laid out
/// per shard (no atomics — see the ownership model above).
class MetricRegistry {
 public:
  /// `shard_names` label the accumulation shards (Prometheus shard="..."
  /// label, Chrome-trace track mapping). At least one shard; names need
  /// not be unique (aliased fleet models are distinct shards).
  explicit MetricRegistry(std::vector<std::string> shard_names);

  std::size_t num_shards() const { return shard_names_.size(); }
  const std::vector<std::string>& shard_names() const { return shard_names_; }

  /// Registers a monotonically increasing counter. kInvalidArgument on a
  /// duplicate name (any kind) or a name that is not Prometheus-safe.
  StatusOr<MetricId> RegisterCounter(const std::string& name,
                                     const std::string& help);

  /// Registers a last-written-value gauge.
  StatusOr<MetricId> RegisterGauge(const std::string& name,
                                   const std::string& help);

  /// Registers a fixed-bucket histogram. `bounds` are the buckets' upper
  /// bounds, strictly increasing and non-empty; an implicit +Inf bucket
  /// follows the last bound.
  StatusOr<MetricId> RegisterHistogram(const std::string& name,
                                       const std::string& help,
                                       std::vector<double> bounds);

  // --- Hot path. No locks, no atomics; `id` must come from the matching
  // Register* call and `shard` must respect the single-writer contract.

  /// Counter increment (also accepts gauges, as an accumulate).
  void Add(MetricId id, std::size_t shard, double delta = 1.0) {
    scalars_[shard][entries_[id].slot] += delta;
  }

  /// Gauge set.
  void Set(MetricId id, std::size_t shard, double value) {
    scalars_[shard][entries_[id].slot] = value;
  }

  /// Histogram observation.
  void Observe(MetricId id, std::size_t shard, double value);

  /// Merges every shard into one MetricSnapshot. Requires quiescence (see
  /// the ownership model); never perturbs the cells it reads.
  MetricSnapshot Snapshot() const;

  /// Zeroes every cell (counters, gauges, histogram buckets) without
  /// forgetting the registrations; same quiescence requirement. Lets one
  /// Telemetry plane be reused across ServeAll runs.
  void Reset();

  /// Number of registered metrics.
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::size_t slot = 0;         ///< scalar slot or histogram index
    std::vector<double> bounds;   ///< histograms only
  };
  struct HistCells {
    std::vector<std::uint64_t> buckets;  ///< size bounds + 1 (+Inf last)
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  /// Shared registration path: name validation + duplicate rejection.
  StatusOr<MetricId> RegisterEntry(Entry entry);

  std::vector<std::string> shard_names_;
  std::vector<Entry> entries_;  ///< registration order, MetricId-indexed
  /// scalars_[shard][slot]: counter / gauge cells. The inner vectors are
  /// padded to a cache-line multiple so two shards never share a line.
  std::vector<std::vector<double>> scalars_;
  std::size_t scalar_slots_ = 0;
  /// hists_[shard][hist_index]: histogram cells, same sharding.
  std::vector<std::vector<HistCells>> hists_;
};

}  // namespace kairos::telemetry
