#include "telemetry/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace kairos::telemetry {
namespace {

/// Prometheus sample values: shortest round-trippable representation
/// ("%.17g" is exact for doubles; integers render without a point).
std::string FormatDouble(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Prometheus label values escape backslash, double-quote and newline.
std::string LabelEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Shard label values, de-duplicated: a name shared by several shards
/// (aliased fleet models) gets a "#<index>" suffix so series stay
/// distinct per shard.
std::vector<std::string> ShardLabels(const std::vector<std::string>& names) {
  std::unordered_map<std::string, std::size_t> counts;
  for (const std::string& name : names) ++counts[name];
  std::vector<std::string> labels;
  labels.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (counts[names[i]] > 1) {
      labels.push_back(names[i] + "#" + std::to_string(i));
    } else {
      labels.push_back(names[i]);
    }
  }
  return labels;
}

}  // namespace

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ExportChromeTrace(const TraceRecorder& recorder) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };

  // One thread_name metadata event per shard names its track in the UI.
  for (std::size_t shard = 0; shard < recorder.num_shards(); ++shard) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << shard
        << ",\"args\":{\"name\":\""
        << JsonEscape(recorder.shard_names()[shard]) << "\"}}";
  }

  for (const TraceEvent& event : recorder.AllEvents()) {
    comma();
    out << "{\"name\":\"" << JsonEscape(event.name) << "\",\"ph\":\""
        << event.phase << "\",\"pid\":0,\"tid\":" << event.shard
        << ",\"ts\":" << event.ts_us;
    if (event.phase == 'X') out << ",\"dur\":" << event.dur_us;
    if (event.phase == 'i') out << ",\"s\":\"t\"";
    if (!event.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) out << ",";
        out << "\"" << JsonEscape(event.args[i].first) << "\":\""
            << JsonEscape(event.args[i].second) << "\"";
      }
      out << "}";
    }
    out << "}";
  }

  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

Status WriteChromeTrace(const TraceRecorder& recorder,
                        const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::Internal("chrome trace: cannot open " + path);
  }
  file << ExportChromeTrace(recorder) << "\n";
  if (!file) {
    return Status::Internal("chrome trace: write failed for " + path);
  }
  return Status::Ok();
}

std::string ExportPrometheus(const MetricSnapshot& snapshot) {
  const std::vector<std::string> labels = ShardLabels(snapshot.shard_names);
  std::ostringstream out;
  for (const MetricValue& metric : snapshot.metrics) {
    out << "# HELP " << metric.name << " " << metric.help << "\n";
    out << "# TYPE " << metric.name << " " << MetricKindName(metric.kind)
        << "\n";
    if (metric.kind == MetricKind::kHistogram) {
      // Cumulative le= buckets merged over shards, then _sum / _count.
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < metric.bucket_counts.size(); ++b) {
        cumulative += metric.bucket_counts[b];
        const std::string le = b < metric.bounds.size()
                                   ? FormatDouble(metric.bounds[b])
                                   : "+Inf";
        out << metric.name << "_bucket{le=\"" << le << "\"} " << cumulative
            << "\n";
      }
      out << metric.name << "_sum " << FormatDouble(metric.sum) << "\n";
      out << metric.name << "_count " << metric.count << "\n";
    } else {
      for (std::size_t s = 0; s < metric.per_shard.size(); ++s) {
        out << metric.name << "{shard=\"" << LabelEscape(labels[s]) << "\"} "
            << FormatDouble(metric.per_shard[s]) << "\n";
      }
    }
  }
  return out.str();
}

Status WritePrometheus(const MetricSnapshot& snapshot,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::Internal("prometheus: cannot open " + path);
  }
  file << ExportPrometheus(snapshot);
  if (!file) {
    return Status::Internal("prometheus: write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace kairos::telemetry
