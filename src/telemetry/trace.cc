#include "telemetry/trace.h"

namespace kairos::telemetry {

TraceRecorder::TraceRecorder(std::vector<std::string> shard_names,
                             std::size_t events_per_shard)
    : shard_names_(std::move(shard_names)),
      capacity_(events_per_shard == 0 ? 1 : events_per_shard),
      epoch_(std::chrono::steady_clock::now()),
      shards_(shard_names_.empty() ? 1 : shard_names_.size()) {
  if (shard_names_.empty()) shard_names_.push_back("0");
  for (Shard& shard : shards_) shard.ring.reserve(capacity_);
}

void TraceRecorder::EmitSpan(
    std::size_t shard, std::string name, std::uint64_t ts_us,
    std::uint64_t dur_us,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.shard = shard;
  event.args = std::move(args);

  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.ring.size() < capacity_) {
    s.ring.push_back(std::move(event));
  } else {
    // Full: overwrite the oldest (drop-oldest) and advance the head.
    s.ring[s.head] = std::move(event);
    s.head = (s.head + 1) % capacity_;
    ++s.dropped;
  }
}

void TraceRecorder::EmitInstant(
    std::size_t shard, std::string name,
    std::vector<std::pair<std::string, std::string>> args) {
  const std::uint64_t now = NowUs();
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'i';
  event.ts_us = now;
  event.shard = shard;
  event.args = std::move(args);

  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.ring.size() < capacity_) {
    s.ring.push_back(std::move(event));
  } else {
    s.ring[s.head] = std::move(event);
    s.head = (s.head + 1) % capacity_;
    ++s.dropped;
  }
}

std::vector<TraceEvent> TraceRecorder::ShardEvents(std::size_t shard) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<TraceEvent> events;
  events.reserve(s.ring.size());
  // head is the oldest entry once the ring has wrapped; 0 before that.
  for (std::size_t i = 0; i < s.ring.size(); ++i) {
    events.push_back(s.ring[(s.head + i) % s.ring.size()]);
  }
  return events;
}

std::vector<TraceEvent> TraceRecorder::AllEvents() const {
  std::vector<TraceEvent> events;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    std::vector<TraceEvent> shard_events = ShardEvents(shard);
    events.insert(events.end(),
                  std::make_move_iterator(shard_events.begin()),
                  std::make_move_iterator(shard_events.end()));
  }
  return events;
}

std::uint64_t TraceRecorder::DroppedCount(std::size_t shard) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.dropped;
}

std::uint64_t TraceRecorder::TotalDropped() const {
  std::uint64_t total = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    total += DroppedCount(shard);
  }
  return total;
}

void TraceRecorder::Reset() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.ring.clear();
    s.head = 0;
    s.dropped = 0;
  }
}

}  // namespace kairos::telemetry
