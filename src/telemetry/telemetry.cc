#include "telemetry/telemetry.h"

#include <utility>

namespace kairos::telemetry {
namespace {

/// advance_wall_us buckets: 1 µs .. 100 ms, roughly log-spaced. An engine
/// advance between barriers is typically tens of µs on the tiny suites
/// and tens of ms on the sustained run.
std::vector<double> AdvanceBounds() {
  return {1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000};
}

}  // namespace

Telemetry::Telemetry(std::vector<std::string> shard_names,
                     const TelemetryOptions& options,
                     std::size_t num_model_shards)
    : num_model_shards_(num_model_shards),
      metrics_(shard_names),
      tracer_(std::move(shard_names), options.trace_events_per_shard) {}

StatusOr<std::unique_ptr<Telemetry>> Telemetry::Create(
    std::vector<std::string> model_names, const TelemetryOptions& options) {
  if (model_names.empty()) {
    return Status::InvalidArgument(
        "telemetry: need at least one model shard");
  }
  const std::size_t num_models = model_names.size();
  model_names.push_back("fleet");
  // Private ctor: can't use make_unique.
  std::unique_ptr<Telemetry> telemetry(
      new Telemetry(std::move(model_names), options, num_models));

  MetricRegistry& reg = telemetry->metrics_;
  // Registration failures here would be programming errors (fixed,
  // distinct, Prometheus-safe names) — propagate anyway for safety.
  const auto take = [](StatusOr<MetricId> id_or,
                       MetricId* out) -> Status {
    if (!id_or.ok()) return id_or.status();
    *out = id_or.value();
    return Status::Ok();
  };
  struct Reg {
    StatusOr<MetricId> id_or;
    MetricId* out;
  };
  Reg regs[] = {
      {reg.RegisterCounter("kairos_queries_offered_total",
                           "Arrivals seen by each shard's engine"),
       &telemetry->queries_offered_},
      {reg.RegisterCounter("kairos_queries_rejected_total",
                           "Arrivals rejected by admission control"),
       &telemetry->queries_rejected_},
      {reg.RegisterCounter("kairos_queries_shed_total",
                           "Waiting queries shed as past-deadline"),
       &telemetry->queries_shed_},
      {reg.RegisterCounter("kairos_queries_served_total",
                           "Query completions"),
       &telemetry->queries_served_},
      {reg.RegisterGauge("kairos_queue_depth",
                         "Central waiting-queue depth after last arrival"),
       &telemetry->queue_depth_},
      {reg.RegisterHistogram("kairos_engine_advance_us",
                             "Wall microseconds per engine AdvanceTo",
                             AdvanceBounds()),
       &telemetry->advance_wall_us_},
      {reg.RegisterGauge("kairos_sim_pending_events",
                         "Simulator event-queue depth at the last barrier"),
       &telemetry->sim_pending_events_},
      {reg.RegisterCounter("kairos_chaos_faults_total",
                           "Chaos faults applied at barriers"),
       &telemetry->chaos_faults_},
      {reg.RegisterCounter("kairos_control_actions_total",
                           "Non-hold controller actions applied"),
       &telemetry->control_actions_},
      {reg.RegisterCounter("kairos_barriers_total",
                           "ServeAll barriers crossed"),
       &telemetry->barriers_},
      {reg.RegisterCounter("kairos_planner_trials_total",
                           "Planner search-trial evaluations"),
       &telemetry->planner_trials_},
      {reg.RegisterGauge("kairos_trace_dropped",
                         "Trace ring-buffer drop-oldest count per shard"),
       &telemetry->trace_dropped_},
  };
  for (Reg& r : regs) {
    const Status status = take(std::move(r.id_or), r.out);
    if (!status.ok()) return status;
  }
  return telemetry;
}

EngineInstruments Telemetry::InstrumentsFor(std::size_t shard) {
  EngineInstruments instruments;
  instruments.metrics = &metrics_;
  instruments.tracer = &tracer_;
  instruments.shard = shard;
  instruments.queries_offered = queries_offered_;
  instruments.queries_rejected = queries_rejected_;
  instruments.queries_shed = queries_shed_;
  instruments.queries_served = queries_served_;
  instruments.queue_depth = queue_depth_;
  instruments.advance_wall_us = advance_wall_us_;
  return instruments;
}

void Telemetry::Reset() {
  metrics_.Reset();
  tracer_.Reset();
}

TelemetrySink::TelemetrySink(Telemetry* telemetry, std::size_t max_samples)
    : telemetry_(telemetry), max_samples_(max_samples) {}

void TelemetrySink::AtBarrier(double sim_time, unsigned barrier_flags) {
  if (telemetry_ == nullptr) return;
  // Refresh the per-shard trace-drop gauge; safe on the driving thread
  // because every AtBarrier call happens at quiescence.
  MetricRegistry& reg = telemetry_->metrics();
  for (std::size_t shard = 0; shard < reg.num_shards(); ++shard) {
    reg.Set(telemetry_->trace_dropped(), shard,
            static_cast<double>(telemetry_->tracer().DroppedCount(shard)));
  }
  if (samples_.size() >= max_samples_) {
    ++dropped_;
    return;
  }
  BarrierSample sample;
  sample.sim_time = sim_time;
  sample.barrier_flags = barrier_flags;
  sample.metrics = reg.Snapshot();
  samples_.push_back(std::move(sample));
}

std::vector<BarrierSample> TelemetrySink::TakeSamples() {
  return std::move(samples_);
}

}  // namespace kairos::telemetry
