#include "policy/kairos_policy.h"

#include <algorithm>
#include <limits>

#include "latency/latency_model.h"
#include "policy/registry.h"

namespace kairos::policy {
namespace {

const PolicyRegistrar kRegistrar(
    PolicyInfo{"KAIROS",
               "min-cost bipartite matching with QoS-penalized costs and "
               "heterogeneity coefficients (Sec. 5.1)",
               {{"xi", 0.98},
                {"penalty_factor", 10.0},
                {"heterogeneity", 1.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<Policy>> {
      KairosPolicyOptions options;
      options.xi = knobs.at("xi");
      options.penalty_factor = knobs.at("penalty_factor");
      options.use_heterogeneity_coefficient = knobs.at("heterogeneity") != 0.0;
      return std::unique_ptr<Policy>(std::make_unique<KairosPolicy>(options));
    });

}  // namespace

KairosPolicy::KairosPolicy(KairosPolicyOptions options) : options_(options) {}

void KairosPolicy::Distribute(const RoundContext& ctx,
                              std::vector<Assignment>& out) {
  out.clear();
  const std::size_t m = ctx.waiting.size();
  const std::size_t n = ctx.instances.size();
  if (m == 0 || n == 0) return;

  // Heterogeneity coefficients (Definition 1): C_j = latency ratio of the
  // largest servable query between the fastest type and type j, so the base
  // normalizes to 1 and slower types weigh in (0, 1).
  coeff_.assign(n, 1.0);
  if (options_.use_heterogeneity_coefficient) {
    double best_ms = std::numeric_limits<double>::infinity();
    largest_ms_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      largest_ms_[j] = ctx.predictor->PredictMsNoiseless(
          ctx.instances[j].type, latency::kMaxBatchSize);
      best_ms = std::min(best_ms, largest_ms_[j]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      coeff_[j] = largest_ms_[j] > 0.0 ? best_ms / largest_ms_[j] : 1.0;
    }
  }

  // Serve-time predictions. A noise-free predictor never draws from the
  // RNG, so the whole waiting frontier can be priced with one batched
  // call per instance *type* instead of one virtual-ish call per (i, j)
  // pair — this loop dominates AllowableThroughput, which evaluates it
  // once per trial per round. A noisy predictor falls back to per-pair
  // calls in the legacy (i, j) order so its noise stream is unchanged.
  const bool batched = ctx.predictor->IsDeterministic();
  if (batched) {
    batch_scratch_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      batch_scratch_[i] = ctx.waiting[i].batch_size;
    }
    cloud::TypeId max_type = 0;
    for (std::size_t j = 0; j < n; ++j) {
      max_type = std::max(max_type, ctx.instances[j].type);
    }
    if (per_type_ms_.size() <= max_type) per_type_ms_.resize(max_type + 1);
    type_priced_.assign(max_type + 1, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const cloud::TypeId t = ctx.instances[j].type;
      if (type_priced_[t]) continue;
      ctx.predictor->PredictMsNoiselessBatch(t, batch_scratch_,
                                             per_type_ms_[t]);
      type_priced_[t] = 1;
    }
  }

  // Build the penalized cost matrix (Eq. 2 + Eq. 8).
  cost_.Reshape(m, n);
  const double penalty_sec = options_.penalty_factor * ctx.qos_sec;
  for (std::size_t i = 0; i < m; ++i) {
    const workload::Query& q = ctx.waiting[i];
    const Time wait = ctx.now - q.arrival;  // W_i
    for (std::size_t j = 0; j < n; ++j) {
      const serving::InstanceView& inst = ctx.instances[j];
      const Time busy_remaining = std::max(0.0, inst.available_at - ctx.now);
      const Time serve =
          batched ? MsToSec(per_type_ms_[inst.type][i])
                  : ctx.predictor->Predict(inst.type, q.batch_size);
      Time l = busy_remaining + serve;  // L_{i,j}
      if (l + wait > options_.xi * ctx.qos_sec) {
        l = penalty_sec;  // Eq. 8: fold constraint Eq. 5 into the objective
      }
      cost_(i, j) = coeff_[j] * l;
    }
  }

  const assign::AssignmentResult& match = assign::SolveJv(cost_, jv_ws_);
  out.reserve(static_cast<std::size_t>(match.matched));
  for (std::size_t i = 0; i < m; ++i) {
    const int j = match.col_for_row[i];
    if (j >= 0) {
      out.push_back(Assignment{i, static_cast<std::size_t>(j)});
    }
  }
}

}  // namespace kairos::policy
