#include "policy/kairos_policy.h"

#include <algorithm>
#include <limits>

#include "assign/jv.h"
#include "latency/latency_model.h"
#include "policy/registry.h"

namespace kairos::policy {
namespace {

const PolicyRegistrar kRegistrar(
    PolicyInfo{"KAIROS",
               "min-cost bipartite matching with QoS-penalized costs and "
               "heterogeneity coefficients (Sec. 5.1)",
               {{"xi", 0.98},
                {"penalty_factor", 10.0},
                {"heterogeneity", 1.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<Policy>> {
      KairosPolicyOptions options;
      options.xi = knobs.at("xi");
      options.penalty_factor = knobs.at("penalty_factor");
      options.use_heterogeneity_coefficient = knobs.at("heterogeneity") != 0.0;
      return std::unique_ptr<Policy>(std::make_unique<KairosPolicy>(options));
    });

}  // namespace

KairosPolicy::KairosPolicy(KairosPolicyOptions options) : options_(options) {}

std::vector<Assignment> KairosPolicy::Distribute(const RoundContext& ctx) {
  const std::size_t m = ctx.waiting.size();
  const std::size_t n = ctx.instances.size();
  if (m == 0 || n == 0) return {};

  // Heterogeneity coefficients (Definition 1): C_j = latency ratio of the
  // largest servable query between the fastest type and type j, so the base
  // normalizes to 1 and slower types weigh in (0, 1).
  std::vector<double> coeff(n, 1.0);
  if (options_.use_heterogeneity_coefficient) {
    double best_ms = std::numeric_limits<double>::infinity();
    std::vector<double> largest_ms(n);
    for (std::size_t j = 0; j < n; ++j) {
      largest_ms[j] = ctx.predictor->PredictMsNoiseless(
          ctx.instances[j].type, latency::kMaxBatchSize);
      best_ms = std::min(best_ms, largest_ms[j]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      coeff[j] = largest_ms[j] > 0.0 ? best_ms / largest_ms[j] : 1.0;
    }
  }

  // Build the penalized cost matrix (Eq. 2 + Eq. 8).
  Matrix cost(m, n);
  const double penalty_sec = options_.penalty_factor * ctx.qos_sec;
  for (std::size_t i = 0; i < m; ++i) {
    const workload::Query& q = ctx.waiting[i];
    const Time wait = ctx.now - q.arrival;  // W_i
    for (std::size_t j = 0; j < n; ++j) {
      const serving::InstanceView& inst = ctx.instances[j];
      const Time busy_remaining = std::max(0.0, inst.available_at - ctx.now);
      const Time serve =
          ctx.predictor->Predict(inst.type, q.batch_size);
      Time l = busy_remaining + serve;  // L_{i,j}
      if (l + wait > options_.xi * ctx.qos_sec) {
        l = penalty_sec;  // Eq. 8: fold constraint Eq. 5 into the objective
      }
      cost(i, j) = coeff[j] * l;
    }
  }

  const assign::AssignmentResult match = assign::SolveJv(cost);
  std::vector<Assignment> out;
  out.reserve(static_cast<std::size_t>(match.matched));
  for (std::size_t i = 0; i < m; ++i) {
    const int j = match.col_for_row[i];
    if (j >= 0) {
      out.push_back(Assignment{i, static_cast<std::size_t>(j)});
    }
  }
  return out;
}

}  // namespace kairos::policy
