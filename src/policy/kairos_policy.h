// The Kairos query-distribution mechanism (Sec. 5.1): min-cost bipartite
// matching between waiting queries and instances with
//   cost(i, j) = C_j * L~(i, j)
// where L(i,j) = remaining busy time of instance j + predicted serving
// latency, C_j is the heterogeneity coefficient (Definition 1), and L~ is
// the QoS-penalized rewrite (Eq. 8) that folds constraint Eq. 5 into the
// objective. Solved with the Jonker–Volgenant algorithm each round.
#pragma once

#include "assign/jv.h"
#include "policy/policy.h"

namespace kairos::policy {

/// Tunables; defaults follow the paper exactly.
struct KairosPolicyOptions {
  /// ξ safeguard: completion within ξ..1 of T_qos already counts as a
  /// violation during planning (Sec. 5.1, ξ = 0.98).
  double xi = 0.98;

  /// Penalty multiplier for QoS-violating pairs: L becomes
  /// penalty_factor * T_qos (Eq. 8 uses 10x).
  double penalty_factor = 10.0;

  /// Use heterogeneity coefficients C_j (Definition 1). Disabling them is
  /// the ablation studied in bench/ablation_kairos_knobs.
  bool use_heterogeneity_coefficient = true;
};

/// Late-binding matching policy.
class KairosPolicy final : public Policy {
 public:
  explicit KairosPolicy(KairosPolicyOptions options = {});

  std::string Name() const override { return "KAIROS"; }
  using Policy::Distribute;
  void Distribute(const RoundContext& ctx,
                  std::vector<Assignment>& out) override;

 private:
  KairosPolicyOptions options_;

  // Per-round scratch, reused across rounds so the steady-state serving
  // loop allocates nothing here once high-water sizes are reached.
  Matrix cost_;
  assign::JvWorkspace jv_ws_;
  std::vector<double> coeff_;
  std::vector<double> largest_ms_;
  std::vector<int> batch_scratch_;  ///< waiting batch sizes
  /// per_type_ms_[t][i] = noiseless prediction for waiting[i] on type t,
  /// filled once per round per type present (deterministic predictor only).
  std::vector<std::vector<double>> per_type_ms_;
  std::vector<char> type_priced_;   ///< per-round "column filled" marks
};

}  // namespace kairos::policy
