// DeepRecSys-style query distribution (DRS, Sec. 7): a static batch-size
// threshold splits traffic — queries larger than the threshold go to the
// base (GPU) pool, smaller ones to the auxiliary (CPU) pool; each pool is
// FCFS. The threshold itself is tuned externally by hill climbing
// (search/hill_climb.h), which is where DRS pays its exploration overhead.
#pragma once

#include "policy/policy.h"

namespace kairos::policy {

/// Late-binding threshold-split FCFS.
class DrsPolicy final : public Policy {
 public:
  /// `threshold` in [0, 1000]: batch > threshold → base pool.
  explicit DrsPolicy(int threshold);

  std::string Name() const override { return "DRS"; }
  using Policy::Distribute;
  void Distribute(const RoundContext& ctx,
                  std::vector<Assignment>& out) override;

  int threshold() const { return threshold_; }

 private:
  int threshold_;
  std::vector<char> taken_;  ///< per-round scratch, reused
};

}  // namespace kairos::policy
