#include "policy/partitioned_policy.h"

#include <stdexcept>

namespace kairos::policy {

PartitionedKairosPolicy::PartitionedKairosPolicy(std::size_t partitions,
                                                 KairosPolicyOptions options)
    : partitions_(partitions), inner_(options) {
  if (partitions == 0) {
    throw std::invalid_argument("PartitionedKairosPolicy: partitions == 0");
  }
}

std::string PartitionedKairosPolicy::Name() const {
  return "KAIROS-POP" + std::to_string(partitions_);
}

std::vector<Assignment> PartitionedKairosPolicy::Distribute(
    const RoundContext& ctx) {
  if (partitions_ == 1) return inner_.Distribute(ctx);

  std::vector<Assignment> merged;
  for (std::size_t p = 0; p < partitions_; ++p) {
    // Round-robin slices: queries by id, instances by index — both are
    // stable across rounds so a query keeps targeting the same sub-system.
    std::vector<workload::Query> queries;
    std::vector<std::size_t> query_map;
    for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
      if (ctx.waiting[i].id % partitions_ == p) {
        queries.push_back(ctx.waiting[i]);
        query_map.push_back(i);
      }
    }
    if (queries.empty()) continue;
    std::vector<serving::InstanceView> instances;
    std::vector<std::size_t> instance_map;
    for (std::size_t j = 0; j < ctx.instances.size(); ++j) {
      if (j % partitions_ == p) {
        instances.push_back(ctx.instances[j]);
        instance_map.push_back(j);
      }
    }
    if (instances.empty()) continue;

    RoundContext sub = ctx;
    sub.waiting = queries;
    sub.instances = instances;
    for (const Assignment& a : inner_.Distribute(sub)) {
      merged.push_back(Assignment{query_map[a.waiting_idx],
                                  instance_map[a.instance_idx]});
    }
  }
  return merged;
}

}  // namespace kairos::policy
