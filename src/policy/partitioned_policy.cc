#include "policy/partitioned_policy.h"

#include <stdexcept>

#include "policy/registry.h"

namespace kairos::policy {
namespace {

const PolicyRegistrar kRegistrar(
    PolicyInfo{"PARTITIONED",
               "POP-style round-robin partitioning, each slice matched by "
               "an independent Kairos matcher (Sec. 6 remark)",
               {{"partitions", 4.0},
                {"xi", 0.98},
                {"penalty_factor", 10.0},
                {"heterogeneity", 1.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<Policy>> {
      KairosPolicyOptions options;
      options.xi = knobs.at("xi");
      options.penalty_factor = knobs.at("penalty_factor");
      options.use_heterogeneity_coefficient = knobs.at("heterogeneity") != 0.0;
      const double partitions = knobs.at("partitions");
      if (partitions < 1.0) {
        return Status::InvalidArgument("PARTITIONED needs partitions >= 1, got " +
                                       std::to_string(partitions));
      }
      return std::unique_ptr<Policy>(std::make_unique<PartitionedKairosPolicy>(
          static_cast<std::size_t>(partitions), options));
    });

}  // namespace

PartitionedKairosPolicy::PartitionedKairosPolicy(std::size_t partitions,
                                                 KairosPolicyOptions options)
    : partitions_(partitions), inner_(options) {
  if (partitions == 0) {
    throw std::invalid_argument("PartitionedKairosPolicy: partitions == 0");
  }
}

std::string PartitionedKairosPolicy::Name() const {
  return "KAIROS-POP" + std::to_string(partitions_);
}

std::vector<Assignment> PartitionedKairosPolicy::Distribute(
    const RoundContext& ctx) {
  if (partitions_ == 1) return inner_.Distribute(ctx);

  std::vector<Assignment> merged;
  for (std::size_t p = 0; p < partitions_; ++p) {
    // Round-robin slices: queries by id, instances by index — both are
    // stable across rounds so a query keeps targeting the same sub-system.
    std::vector<workload::Query> queries;
    std::vector<std::size_t> query_map;
    for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
      if (ctx.waiting[i].id % partitions_ == p) {
        queries.push_back(ctx.waiting[i]);
        query_map.push_back(i);
      }
    }
    if (queries.empty()) continue;
    std::vector<serving::InstanceView> instances;
    std::vector<std::size_t> instance_map;
    for (std::size_t j = 0; j < ctx.instances.size(); ++j) {
      if (j % partitions_ == p) {
        instances.push_back(ctx.instances[j]);
        instance_map.push_back(j);
      }
    }
    if (instances.empty()) continue;

    RoundContext sub = ctx;
    sub.waiting = queries;
    sub.instances = instances;
    for (const Assignment& a : inner_.Distribute(sub)) {
      merged.push_back(Assignment{query_map[a.waiting_idx],
                                  instance_map[a.instance_idx]});
    }
  }
  return merged;
}

}  // namespace kairos::policy
