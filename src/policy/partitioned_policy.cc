#include "policy/partitioned_policy.h"

#include <stdexcept>

#include "policy/registry.h"

namespace kairos::policy {
namespace {

const PolicyRegistrar kRegistrar(
    PolicyInfo{"PARTITIONED",
               "POP-style round-robin partitioning, each slice matched by "
               "an independent Kairos matcher (Sec. 6 remark)",
               {{"partitions", 4.0},
                {"xi", 0.98},
                {"penalty_factor", 10.0},
                {"heterogeneity", 1.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<Policy>> {
      KairosPolicyOptions options;
      options.xi = knobs.at("xi");
      options.penalty_factor = knobs.at("penalty_factor");
      options.use_heterogeneity_coefficient = knobs.at("heterogeneity") != 0.0;
      const double partitions = knobs.at("partitions");
      if (partitions < 1.0) {
        return Status::InvalidArgument("PARTITIONED needs partitions >= 1, got " +
                                       std::to_string(partitions));
      }
      return std::unique_ptr<Policy>(std::make_unique<PartitionedKairosPolicy>(
          static_cast<std::size_t>(partitions), options));
    });

}  // namespace

PartitionedKairosPolicy::PartitionedKairosPolicy(std::size_t partitions,
                                                 KairosPolicyOptions options)
    : partitions_(partitions), inner_(options) {
  if (partitions == 0) {
    throw std::invalid_argument("PartitionedKairosPolicy: partitions == 0");
  }
}

std::string PartitionedKairosPolicy::Name() const {
  return "KAIROS-POP" + std::to_string(partitions_);
}

void PartitionedKairosPolicy::Distribute(const RoundContext& ctx,
                                         std::vector<Assignment>& out) {
  if (partitions_ == 1) {
    inner_.Distribute(ctx, out);
    return;
  }

  out.clear();
  for (std::size_t p = 0; p < partitions_; ++p) {
    // Round-robin slices: queries by id, instances by index — both are
    // stable across rounds so a query keeps targeting the same sub-system.
    queries_.clear();
    query_map_.clear();
    for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
      if (ctx.waiting[i].id % partitions_ == p) {
        queries_.push_back(ctx.waiting[i]);
        query_map_.push_back(i);
      }
    }
    if (queries_.empty()) continue;
    instances_.clear();
    instance_map_.clear();
    for (std::size_t j = 0; j < ctx.instances.size(); ++j) {
      if (j % partitions_ == p) {
        instances_.push_back(ctx.instances[j]);
        instance_map_.push_back(j);
      }
    }
    if (instances_.empty()) continue;

    RoundContext sub = ctx;
    sub.waiting = queries_;
    sub.instances = instances_;
    inner_.Distribute(sub, sub_out_);
    for (const Assignment& a : sub_out_) {
      out.push_back(Assignment{query_map_[a.waiting_idx],
                               instance_map_[a.instance_idx]});
    }
  }
}

}  // namespace kairos::policy
