#include "policy/registry.h"

#include "common/strings.h"

namespace kairos::policy {

std::string CanonicalSchemeName(const std::string& name) {
  return CanonicalName(name);
}

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = new PolicyRegistry();
  return *registry;
}

Status PolicyRegistry::Register(PolicyInfo info, PolicyBuilder builder) {
  info.name = CanonicalSchemeName(info.name);
  if (info.name.empty()) {
    return Status::InvalidArgument("policy registration with empty name");
  }
  if (builder == nullptr) {
    return Status::InvalidArgument("policy " + info.name +
                                   " registered without a builder");
  }
  std::string key = info.name;  // read before info is moved from
  const auto [it, inserted] = entries_.emplace(
      std::move(key), Entry{std::move(info), std::move(builder)});
  if (!inserted) {
    return Status::InvalidArgument("policy " + it->first +
                                   " registered twice");
  }
  return Status::Ok();
}

std::vector<std::string> PolicyRegistry::ListNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates in sorted key order
}

bool PolicyRegistry::Contains(const std::string& name) const {
  return entries_.count(CanonicalSchemeName(name)) > 0;
}

StatusOr<PolicyRegistry::Entry> PolicyRegistry::Find(
    const std::string& name) const {
  const auto it = entries_.find(CanonicalSchemeName(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown scheme \"" + name +
                            "\"; registered schemes: " +
                            JoinComma(ListNames()));
  }
  return it->second;
}

StatusOr<PolicyInfo> PolicyRegistry::Info(const std::string& name) const {
  auto entry = Find(name);
  if (!entry.ok()) return entry.status();
  return entry->info;
}

StatusOr<KnobMap> PolicyRegistry::MergeKnobs(const Entry& entry,
                                             const KnobMap& overrides) {
  KnobMap knobs = entry.info.knobs;  // defaults
  for (const auto& [knob, value] : overrides) {
    const auto it = knobs.find(knob);
    if (it == knobs.end()) {
      std::vector<std::string> supported;
      for (const auto& [k, v] : entry.info.knobs) supported.push_back(k);
      return Status::InvalidArgument(
          "scheme " + entry.info.name + " has no knob \"" + knob + "\"" +
          (supported.empty() ? " (it takes none)"
                             : "; supported knobs: " + JoinComma(supported)));
    }
    it->second = value;
  }
  return knobs;
}

StatusOr<std::unique_ptr<Policy>> PolicyRegistry::Build(
    const std::string& name, const KnobMap& overrides) const {
  auto entry = Find(name);
  if (!entry.ok()) return entry.status();
  auto knobs = MergeKnobs(*entry, overrides);
  if (!knobs.ok()) return knobs.status();
  return entry->builder(*knobs);
}

StatusOr<PolicyFactory> PolicyRegistry::MakeFactory(
    const std::string& name, const KnobMap& overrides) const {
  auto entry = Find(name);
  if (!entry.ok()) return entry.status();
  auto knobs = MergeKnobs(*entry, overrides);
  if (!knobs.ok()) return knobs.status();

  // Trial build so knob-value errors surface here, not per rate trial.
  auto trial = entry->builder(*knobs);
  if (!trial.ok()) return trial.status();

  PolicyBuilder builder = entry->builder;
  return PolicyFactory(
      [builder = std::move(builder), knobs = *std::move(knobs)] {
        // Knobs were validated by the trial build above; a builder that
        // is non-deterministic in its validation aborts via value().
        return builder(knobs).value();
      });
}

}  // namespace kairos::policy
