// POP-style partitioned matching (Sec. 6 remark): to scale to very large
// systems, the pool is split into k sub-systems, each running its own
// Kairos matcher over a 1/k slice of instances and queries. Matching cost
// drops by ~k^2 per round at a (small) loss of global optimality — the
// trade-off quantified by bench/ablation_pop_partition.
#pragma once

#include "policy/kairos_policy.h"

namespace kairos::policy {

/// KairosPolicy applied independently to k round-robin partitions.
class PartitionedKairosPolicy final : public Policy {
 public:
  /// `partitions` >= 1; 1 degenerates to plain KairosPolicy.
  explicit PartitionedKairosPolicy(std::size_t partitions,
                                   KairosPolicyOptions options = {});

  std::string Name() const override;
  std::vector<Assignment> Distribute(const RoundContext& ctx) override;

 private:
  std::size_t partitions_;
  KairosPolicy inner_;
};

}  // namespace kairos::policy
