// POP-style partitioned matching (Sec. 6 remark): to scale to very large
// systems, the pool is split into k sub-systems, each running its own
// Kairos matcher over a 1/k slice of instances and queries. Matching cost
// drops by ~k^2 per round at a (small) loss of global optimality — the
// trade-off quantified by bench/ablation_pop_partition.
#pragma once

#include "policy/kairos_policy.h"

namespace kairos::policy {

/// KairosPolicy applied independently to k round-robin partitions.
class PartitionedKairosPolicy final : public Policy {
 public:
  /// `partitions` >= 1; 1 degenerates to plain KairosPolicy.
  explicit PartitionedKairosPolicy(std::size_t partitions,
                                   KairosPolicyOptions options = {});

  std::string Name() const override;
  using Policy::Distribute;
  void Distribute(const RoundContext& ctx,
                  std::vector<Assignment>& out) override;

 private:
  std::size_t partitions_;
  KairosPolicy inner_;

  // Per-round slice scratch, reused across rounds.
  std::vector<workload::Query> queries_;
  std::vector<std::size_t> query_map_;
  std::vector<serving::InstanceView> instances_;
  std::vector<std::size_t> instance_map_;
  std::vector<Assignment> sub_out_;
};

}  // namespace kairos::policy
