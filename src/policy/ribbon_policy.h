// Ribbon's query-distribution mechanism (Sec. 7): plain FCFS — the oldest
// waiting query goes to the best (lowest-predicted-latency) idle instance,
// preferring base-type instances on ties. Ribbon's contribution is its
// Bayesian-optimization *allocation* search (see search/bayes_opt.h); its
// distribution side is deliberately simple, which is what Fig. 3 exposes.
#pragma once

#include "policy/policy.h"

namespace kairos::policy {

/// Late-binding FCFS onto idle instances.
class RibbonPolicy final : public Policy {
 public:
  std::string Name() const override { return "RIBBON"; }
  using Policy::Distribute;
  void Distribute(const RoundContext& ctx,
                  std::vector<Assignment>& out) override;

 private:
  std::vector<char> taken_;  ///< per-round scratch, reused
};

}  // namespace kairos::policy
