#include "policy/drs_policy.h"

#include <stdexcept>
#include <vector>

#include "latency/latency_model.h"
#include "policy/registry.h"

namespace kairos::policy {
namespace {

const PolicyRegistrar kRegistrar(
    PolicyInfo{"DRS",
               "DeepRecSys-style static batch-size threshold split between "
               "base and auxiliary pools (Sec. 7)",
               {{"threshold", 200.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<Policy>> {
      const double threshold = knobs.at("threshold");
      if (threshold < 0.0 || threshold > latency::kMaxBatchSize) {
        return Status::InvalidArgument(
            "DRS threshold " + std::to_string(threshold) +
            " outside [0, " + std::to_string(latency::kMaxBatchSize) + "]");
      }
      return std::unique_ptr<Policy>(
          std::make_unique<DrsPolicy>(static_cast<int>(threshold)));
    });

}  // namespace

DrsPolicy::DrsPolicy(int threshold) : threshold_(threshold) {
  if (threshold < 0 || threshold > latency::kMaxBatchSize) {
    throw std::invalid_argument("DrsPolicy: threshold out of range");
  }
}

void DrsPolicy::Distribute(const RoundContext& ctx,
                           std::vector<Assignment>& out) {
  out.clear();
  std::vector<char>& taken = taken_;
  taken.assign(ctx.instances.size(), 0);

  // Detect whether any auxiliary instance exists; without one (homogeneous
  // configurations) everything flows to the base pool.
  bool has_aux = false;
  for (const serving::InstanceView& inst : ctx.instances) {
    if (!(*ctx.catalog)[inst.type].is_base) has_aux = true;
  }

  for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
    const bool to_base =
        !has_aux || ctx.waiting[i].batch_size > threshold_;
    std::size_t chosen = ctx.instances.size();
    for (std::size_t j = 0; j < ctx.instances.size(); ++j) {
      const serving::InstanceView& inst = ctx.instances[j];
      if (!inst.idle || taken[j]) continue;
      const bool is_base = (*ctx.catalog)[inst.type].is_base;
      if (is_base == to_base) {
        chosen = j;
        break;  // first idle instance of the right pool (FCFS within pool)
      }
    }
    if (chosen == ctx.instances.size()) continue;  // pool busy; query waits
    taken[chosen] = 1;
    out.push_back(Assignment{i, chosen});
  }
}

}  // namespace kairos::policy
