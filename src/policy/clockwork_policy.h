// Clockwork-inspired distribution (CLKWRK, Sec. 7): a central controller
// with accurate latency prediction and per-instance FCFS queues. Each
// arriving query is immediately committed (early binding) to the instance
// whose predicted completion meets the QoS target, choosing the earliest
// such completion; if no instance can meet QoS, the earliest-completing
// instance is used anyway. QoS-aware, but heterogeneity-blind: it never
// reserves fast instances for the queries that need them most.
#pragma once

#include "policy/policy.h"

namespace kairos::policy {

/// Early-binding QoS-aware earliest-completion policy.
class ClockworkPolicy final : public Policy {
 public:
  std::string Name() const override { return "CLKWRK"; }
  bool EarlyBinding() const override { return true; }
  using Policy::Distribute;
  void Distribute(const RoundContext& ctx,
                  std::vector<Assignment>& out) override;

 private:
  std::vector<Time> avail_;  ///< per-round availability scratch, reused
};

}  // namespace kairos::policy
