#include "policy/ribbon_policy.h"

#include <limits>
#include <vector>

#include "policy/registry.h"

namespace kairos::policy {
namespace {

const PolicyRegistrar kRegistrar(
    PolicyInfo{"RIBBON",
               "FCFS onto the best idle instance (Ribbon's distribution "
               "side, Sec. 7)",
               {}},
    [](const KnobMap&) -> StatusOr<std::unique_ptr<Policy>> {
      return std::unique_ptr<Policy>(std::make_unique<RibbonPolicy>());
    });

}  // namespace

void RibbonPolicy::Distribute(const RoundContext& ctx,
                              std::vector<Assignment>& out) {
  out.clear();
  std::vector<char>& taken = taken_;
  taken.assign(ctx.instances.size(), 0);
  // FCFS: oldest waiting query first; stops when no idle instance remains.
  for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
    double best_ms = std::numeric_limits<double>::infinity();
    std::size_t best_j = ctx.instances.size();
    for (std::size_t j = 0; j < ctx.instances.size(); ++j) {
      const serving::InstanceView& inst = ctx.instances[j];
      if (!inst.idle || taken[j]) continue;
      const double ms =
          ctx.predictor->PredictMs(inst.type, ctx.waiting[i].batch_size);
      // Strictly-better wins; the first instance wins ties, which realizes
      // the base-type preference since base instances sort first in the
      // configuration layout.
      if (ms < best_ms) {
        best_ms = ms;
        best_j = j;
      }
    }
    if (best_j == ctx.instances.size()) break;  // no idle instance left
    taken[best_j] = 1;
    out.push_back(Assignment{i, best_j});
  }
}

}  // namespace kairos::policy
