#include "policy/clockwork_policy.h"

#include <limits>
#include <vector>

#include "policy/registry.h"

namespace kairos::policy {
namespace {

const PolicyRegistrar kRegistrar(
    PolicyInfo{"CLKWRK",
               "Clockwork-style early binding to the earliest QoS-meeting "
               "per-instance FIFO (Sec. 7)",
               {}},
    [](const KnobMap&) -> StatusOr<std::unique_ptr<Policy>> {
      return std::unique_ptr<Policy>(std::make_unique<ClockworkPolicy>());
    });

}  // namespace

void ClockworkPolicy::Distribute(const RoundContext& ctx,
                                 std::vector<Assignment>& out) {
  out.clear();
  // Early binding means assignments stack onto instance queues; track the
  // availability estimate as we commit within this round.
  std::vector<Time>& avail = avail_;
  avail.resize(ctx.instances.size());
  for (std::size_t j = 0; j < ctx.instances.size(); ++j) {
    avail[j] = std::max(ctx.now, ctx.instances[j].available_at);
  }

  for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
    const workload::Query& q = ctx.waiting[i];
    const Time deadline = q.arrival + ctx.qos_sec;

    double best_meeting = std::numeric_limits<double>::infinity();
    std::size_t best_meeting_j = ctx.instances.size();
    double best_any = std::numeric_limits<double>::infinity();
    std::size_t best_any_j = ctx.instances.size();

    for (std::size_t j = 0; j < ctx.instances.size(); ++j) {
      const Time serve =
          ctx.predictor->Predict(ctx.instances[j].type, q.batch_size);
      const Time finish = avail[j] + serve;
      if (finish < best_any) {
        best_any = finish;
        best_any_j = j;
      }
      if (finish <= deadline && finish < best_meeting) {
        best_meeting = finish;
        best_meeting_j = j;
      }
    }
    const std::size_t j =
        best_meeting_j != ctx.instances.size() ? best_meeting_j : best_any_j;
    const Time serve = ctx.predictor->Predict(ctx.instances[j].type,
                                              q.batch_size);
    avail[j] += serve;
    out.push_back(Assignment{i, j});
  }
}

}  // namespace kairos::policy
