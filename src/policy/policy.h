// Query-distribution policy interface. The serving system invokes the
// policy on every arrival and completion ("round", Sec. 5.1); the policy
// proposes query→instance assignments over the current central queue.
// Rounds where no proposal could start anything — a late-binding policy
// with zero idle instances — are skipped outright (the engine's
// saturated-round fast path), so a policy must derive each round purely
// from the RoundContext rather than from counting invocations.
//
// Binding semantics:
//  * late binding (default): only assignments onto currently *idle*
//    instances start; the rest of the queue waits and is re-distributed
//    next round (this is what keeps Kairos's options open);
//  * early binding (EarlyBinding() == true): assignments onto busy
//    instances are committed to that instance's FIFO immediately
//    (Clockwork-style per-instance queues).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "cloud/instance_type.h"
#include "common/time.h"
#include "serving/instance.h"
#include "serving/latency_predictor.h"
#include "workload/query.h"

namespace kairos::policy {

/// Everything a policy may consult when distributing one round.
struct RoundContext {
  Time now = 0.0;
  double qos_sec = 0.0;
  /// Central queue in FIFO (arrival) order.
  std::span<const workload::Query> waiting;
  /// Snapshot of every instance in the configuration.
  std::span<const serving::InstanceView> instances;
  /// Latency predictions (shared with the system; observations flow back).
  serving::LatencyPredictor* predictor = nullptr;
  const cloud::Catalog* catalog = nullptr;
};

/// One proposed query→instance pairing, by index into the context spans.
struct Assignment {
  std::size_t waiting_idx = 0;
  std::size_t instance_idx = 0;
};

/// Base class for all distribution mechanisms.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Scheme name for reports ("KAIROS", "RIBBON", ...).
  virtual std::string Name() const = 0;

  /// Proposes assignments for this round, appended into `out` (which is
  /// cleared first). Each waiting index and each instance index may appear
  /// at most once (checked by the system). The out-param form lets the
  /// engine reuse one vector across every round of a 10M-query stream —
  /// the per-round return vector was measurable steady-state heap traffic.
  virtual void Distribute(const RoundContext& ctx,
                          std::vector<Assignment>& out) = 0;

  /// Convenience wrapper for tests and one-shot callers. Derived classes
  /// re-expose it with `using Policy::Distribute;`.
  std::vector<Assignment> Distribute(const RoundContext& ctx) {
    std::vector<Assignment> out;
    Distribute(ctx, out);
    return out;
  }

  /// See binding semantics above.
  virtual bool EarlyBinding() const { return false; }

  /// Clears any per-run state; called when a fresh simulation starts.
  virtual void Reset() {}
};

}  // namespace kairos::policy
