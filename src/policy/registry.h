// The distribution-scheme registry: every policy registers itself (a
// static PolicyRegistrar in its .cc) under a canonical upper-case name
// with a knob map of tunables, and callers build policies by name —
// case-insensitively — without including any concrete policy header.
// Unknown names and unknown knobs come back as kairos::Status errors that
// list the valid alternatives, never as exceptions.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "policy/policy.h"

namespace kairos::policy {

/// Produces a fresh policy instance; identical to serving::PolicyFactory
/// (systems own their policy), restated here to keep the registry free of
/// serving-layer includes.
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

/// Named numeric tunables. Booleans are encoded as 0.0 / 1.0, integers as
/// their exact double value — one scalar type keeps knob plumbing (CLI
/// flags, sweep configs) trivial.
using KnobMap = std::map<std::string, double>;

/// Registration-time description of one scheme.
struct PolicyInfo {
  std::string name;     ///< canonical name, e.g. "KAIROS" (upper-cased)
  std::string summary;  ///< one-line description for listings
  KnobMap knobs;        ///< supported knob names with their default values
};

/// Builds a policy from a *complete* knob map (defaults merged with the
/// caller's overrides; every declared knob is present, no others).
/// Returns kInvalidArgument for an out-of-range knob *value* — builders
/// must not throw or silently clamp.
using PolicyBuilder =
    std::function<StatusOr<std::unique_ptr<Policy>>(const KnobMap& knobs)>;

/// Process-wide name -> factory table for distribution schemes.
class PolicyRegistry {
 public:
  /// The global registry all static registrars populate.
  static PolicyRegistry& Global();

  /// Registers a scheme. Fails with kInvalidArgument when the (canonical)
  /// name is empty or already taken.
  Status Register(PolicyInfo info, PolicyBuilder builder);

  /// Canonical names of every registered scheme, sorted alphabetically.
  std::vector<std::string> ListNames() const;

  /// Case-insensitive membership test.
  bool Contains(const std::string& name) const;

  /// Registration info for a scheme (canonical name, summary, knobs).
  StatusOr<PolicyInfo> Info(const std::string& name) const;

  /// Builds one policy instance. `overrides` may set any subset of the
  /// scheme's declared knobs; an undeclared knob name or out-of-range
  /// knob value is kInvalidArgument, an unknown scheme is kNotFound
  /// listing the registered names.
  StatusOr<std::unique_ptr<Policy>> Build(const std::string& name,
                                          const KnobMap& overrides = {}) const;

  /// Same resolution as Build(), packaged as a reusable factory for the
  /// evaluators that construct one policy per rate trial. The knobs are
  /// validated here (including a trial build), so the returned factory
  /// cannot fail.
  StatusOr<PolicyFactory> MakeFactory(const std::string& name,
                                      const KnobMap& overrides = {}) const;

 private:
  struct Entry {
    PolicyInfo info;
    PolicyBuilder builder;
  };

  /// The Entry, or kNotFound naming the alternatives.
  StatusOr<Entry> Find(const std::string& name) const;

  /// Defaults overlaid with `overrides`; kInvalidArgument on an
  /// undeclared knob name.
  static StatusOr<KnobMap> MergeKnobs(const Entry& entry,
                                      const KnobMap& overrides);

  std::map<std::string, Entry> entries_;  ///< keyed by canonical name
};

/// Upper-cases ASCII, the registry's canonical form ("kairos" -> "KAIROS").
std::string CanonicalSchemeName(const std::string& name);

/// Static-initialization helper: each policy .cc defines one at namespace
/// scope to self-register into PolicyRegistry::Global().
class PolicyRegistrar {
 public:
  PolicyRegistrar(PolicyInfo info, PolicyBuilder builder) {
    // Registration conflicts at startup are programming errors; surface
    // them loudly rather than silently shadowing a scheme.
    const Status status =
        PolicyRegistry::Global().Register(std::move(info), std::move(builder));
    if (!status.ok()) {
      std::fprintf(stderr, "PolicyRegistrar: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
};

}  // namespace kairos::policy

namespace kairos {
/// The registry is part of the top-level public API surface.
using policy::PolicyRegistry;
}  // namespace kairos
