#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <utility>

namespace kairos::sim {
namespace {

constexpr std::uint64_t kSlotMask = 0xffffffffull;

/// Calendar sizing: the wheel re-fits itself between these bounds. The
/// floor keeps the empty-bucket scan trivially cheap at low occupancy;
/// the cap bounds ring memory (1M buckets ≈ 24 MB of empty vectors) while
/// still keeping ~10 events per bucket at the 10M-pending extreme.
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

QueueBackend& DefaultBackendRef() {
  static QueueBackend backend = [] {
    if (const char* env = std::getenv("KAIROS_EVENT_QUEUE")) {
      const std::string_view v(env);
      if (v == "heap") return QueueBackend::kHeap;
      if (v == "calendar" || v == "wheel") return QueueBackend::kCalendar;
    }
    return QueueBackend::kCalendar;
  }();
  return backend;
}

}  // namespace

QueueBackend DefaultQueueBackend() { return DefaultBackendRef(); }

void SetDefaultQueueBackend(QueueBackend backend) {
  DefaultBackendRef() = backend;
}

EventQueue::EventQueue(QueueBackend backend) : backend_(backend) {
  if (backend_ == QueueBackend::kCalendar) {
    bucket_count_ = kMinBuckets;
    buckets_.assign(kMinBuckets, {});
    bucket_bits_.assign(kMinBuckets / 64, 0);
    RefreshBounds();
  }
}

EventId EventQueue::Schedule(Time at, EventFn fn) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    // The free list can hold at most one entry per slot. Growing its
    // capacity here, alongside the slot table (amortized by the table's
    // geometric growth), keeps Release()'s push allocation-free at steady
    // state — the zero-alloc contract perf_suite's sustained audit gates.
    if (free_.capacity() < slots_.capacity()) {
      free_.reserve(slots_.capacity());
    }
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  const Entry e{at, next_seq_++, slot, s.generation};
  if (backend_ == QueueBackend::kHeap) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  } else {
    if (live_ == 0) {
      // Nothing live anywhere: discard stale leftovers wholesale and
      // rebase the wheel so bucket 0 starts exactly at this event.
      cur_.clear();
      cur_pos_ = 0;
      for (auto& b : buckets_) b.clear();
      std::fill(bucket_bits_.begin(), bucket_bits_.end(), 0);
      overflow_.clear();
      wheel_entries_ = 0;
      origin_ = at;
      tick_ = 0;
      RefreshBounds();
    }
    RouteEntry(e, /*batch=*/false);
  }
  ++live_;
  if (backend_ == QueueBackend::kCalendar && live_ > 4 * bucket_count_ &&
      bucket_count_ < kMaxBuckets) {
    Rebuild(bucket_count_ * 2);
  }
  return (static_cast<EventId>(s.generation) << 32) | slot;
}

void EventQueue::Release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  // Generation 0xFFFFFFFF is a retirement sentinel: once a slot exhausts
  // its generation space it is never reused, so a hoarded stale id can
  // never wrap around onto a future event (no ABA even across 2^32
  // schedules of one slot). Costs one dead slot per 2^32 firings.
  if (++s.generation != 0xFFFFFFFFu) free_.push_back(slot);
}

bool EventQueue::Cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return false;  // already fired, already cancelled, or slot recycled
  }
  // The queued entry normally stays behind, discarded lazily by
  // generation mismatch once it surfaces — but the common
  // schedule-then-cancel pattern (watchdogs, speculative timers) leaves
  // the entry at the tail of whatever container it just landed in, where
  // removing it outright is O(1) and order-neutral.
  if (backend_ == QueueBackend::kHeap) {
    if (!heap_.empty() && heap_.back().slot == slot &&
        heap_.back().generation == generation) {
      // A just-pushed far-future entry does not sift up, so it is still
      // the array tail; dropping the tail keeps the heap valid.
      heap_.pop_back();
    }
  } else {
    TryEraseRoutedTail(slot, generation);
  }
  Release(slot);
  assert(live_ > 0);
  --live_;
  return true;
}

void EventQueue::TryEraseRoutedTail(std::uint32_t slot,
                                    std::uint32_t generation) {
  if (last_routed_ == kRoutedOverflow) {
    if (!overflow_.empty() && overflow_.back().slot == slot &&
        overflow_.back().generation == generation) {
      overflow_.pop_back();
    }
    return;
  }
  std::vector<Entry>* v = nullptr;
  if (last_routed_ == kRoutedCur) {
    // Only a tail beyond the drain position is safely poppable.
    if (cur_pos_ < cur_.size()) v = &cur_;
  } else if (last_routed_ < bucket_count_) {
    v = &buckets_[last_routed_];
  }
  if (v != nullptr && !v->empty() && v->back().slot == slot &&
      v->back().generation == generation) {
    v->pop_back();
    --wheel_entries_;
    if (v->empty() && last_routed_ < bucket_count_) {
      ClearOccupied(last_routed_);
    }
  }
}

void EventQueue::DropStaleHeapHead() const {
  while (!heap_.empty() && IsStale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void EventQueue::SortEntries(std::vector<Entry>& v) {
  const std::size_t n = v.size();
  if (n < 2) return;
  if (n <= 24) {
    for (std::size_t i = 1; i < n; ++i) {
      const Entry e = v[i];
      std::size_t j = i;
      while (j > 0 && Earlier{}(e, v[j - 1])) {
        v[j] = v[j - 1];
        --j;
      }
      v[j] = e;
    }
    return;
  }
  std::sort(v.begin(), v.end(), Earlier{});
}

void EventQueue::RouteEntry(const Entry& e, bool batch) {
  // Horizon test first: kTimeInfinity (and anything far out) must never
  // reach the division below.
  if (e.at >= horizon_) {
    OverflowPush(e);
    return;
  }
  std::uint64_t k = tick_;
  if (e.at >= cur_end_) {
    // Multiply by the cached reciprocal: only a guess — the exact-compare
    // loops below pin the canonical bucket, so the rounding difference vs
    // a true division never changes where an event lands.
    k = tick_ + 1 + static_cast<std::uint64_t>((e.at - cur_end_) * inv_width_);
    if (k >= tick_ + bucket_count_) k = tick_ + bucket_count_ - 1;
    // The division is a guess; pin k to the canonical bucket satisfying
    // Boundary(k) <= at < Boundary(k + 1) with exact comparisons, so the
    // at -> bucket mapping is a pure monotone function of the timestamp.
    while (k > tick_ && Boundary(k) > e.at) --k;
    while (k + 1 < tick_ + bucket_count_ && Boundary(k + 1) <= e.at) ++k;
  }
  ++wheel_entries_;
  if (k == tick_) {
    last_routed_ = kRoutedCur;
    if (batch) {
      cur_.push_back(e);
    } else {
      // seq is globally monotone, so among equal timestamps the new entry
      // lands after every existing one: FIFO tie-break preserved.
      const auto it =
          std::upper_bound(cur_.begin() + static_cast<std::ptrdiff_t>(cur_pos_),
                           cur_.end(), e, Earlier{});
      cur_.insert(it, e);
    }
    return;
  }
  last_routed_ = k & (bucket_count_ - 1);
  buckets_[last_routed_].push_back(e);
  MarkOccupied(last_routed_);
}

void EventQueue::OverflowPush(const Entry& e) {
  last_routed_ = kRoutedOverflow;
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(), Later{});
}

EventQueue::Entry EventQueue::OverflowPop() {
  std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
  const Entry e = overflow_.back();
  overflow_.pop_back();
  return e;
}

void EventQueue::MigrateOverflow() {
  while (!overflow_.empty() && overflow_.front().at < horizon_) {
    const Entry e = OverflowPop();
    if (IsStale(e)) continue;
    RouteEntry(e, /*batch=*/false);
  }
}

void EventQueue::Rebuild(std::size_t new_count) {
  std::vector<Entry>& all = rebuild_scratch_;
  all.clear();
  for (std::size_t i = cur_pos_; i < cur_.size(); ++i) {
    if (!IsStale(cur_[i])) all.push_back(cur_[i]);
  }
  for (const auto& b : buckets_) {
    for (const Entry& e : b) {
      if (!IsStale(e)) all.push_back(e);
    }
  }
  for (const Entry& e : overflow_) {
    if (!IsStale(e)) all.push_back(e);
  }

  cur_.clear();
  cur_pos_ = 0;
  overflow_.clear();
  wheel_entries_ = 0;
  bucket_count_ = new_count;
  buckets_.assign(new_count, {});
  bucket_bits_.assign(std::max<std::size_t>(new_count / 64, 1), 0);
  tick_ = 0;
  RefreshBounds();
  if (all.empty()) return;

  std::sort(all.begin(), all.end(), Earlier{});
  origin_ = all.front().at;

  // Re-fit the bucket width from the interquartile mean gap of the live
  // distribution: robust against far-future outliers (watchdogs at
  // kTimeInfinity-scale times would otherwise blow the width up and fold
  // the whole working set into one bucket). Floors keep boundaries
  // strictly increasing in floating point so routing always terminates.
  Time width = 0.0;
  const std::size_t n = all.size();
  if (n >= 2) {
    std::size_t lo = n / 4;
    std::size_t hi = (3 * n) / 4;
    if (hi <= lo) {
      lo = 0;
      hi = n - 1;
    }
    width = 4.0 * (all[hi].at - all[lo].at) / static_cast<Time>(hi - lo);
  }
  SetWidth(std::max({width, std::abs(origin_) * 1e-9, 1e-12}));
  RefreshBounds();

  for (const Entry& e : all) RouteEntry(e, /*batch=*/true);
  SortEntries(cur_);
  all.clear();
}

bool EventQueue::AdvanceToNextLiveSlow() {
  for (;;) {
    while (cur_pos_ < cur_.size()) {
      if (!IsStale(cur_[cur_pos_])) return true;
      ++cur_pos_;
      --wheel_entries_;
    }
    cur_.clear();
    cur_pos_ = 0;
    if (live_ == 0) return false;

    if (wheel_entries_ == 0) {
      // Every live event sits past the horizon: rebase the wheel at the
      // overflow minimum instead of ticking through empty buckets. This is
      // also the moment a mis-fitted width surfaces (a low-occupancy queue
      // never crosses the resize thresholds, so Rebuild alone would never
      // re-fit it) — so re-fit here.
      while (!overflow_.empty() && IsStale(overflow_.front())) OverflowPop();
      if (overflow_.empty()) return false;  // unreachable while live_ > 0
      if (overflow_.size() <= 4 * bucket_count_) {
        // Cheap at this size: full rebuild re-samples the width from the
        // live spacing and spreads everything across the ring.
        Rebuild(bucket_count_);
      } else {
        // Too much overflow to re-sort on every rebase; take the leading
        // gap off the heap top as the width hint and let migration pull
        // the near end onto the wheel.
        const Time top = overflow_.front().at;
        Time second = kTimeInfinity;
        if (overflow_.size() > 1) second = overflow_[1].at;
        if (overflow_.size() > 2) second = std::min(second, overflow_[2].at);
        if (second > top && second < kTimeInfinity) {
          SetWidth(std::max({4.0 * (second - top), std::abs(top) * 1e-9,
                             1e-12}));
        }
        origin_ = top;
        tick_ = 0;
        RefreshBounds();
        // Bucket 0 now starts at the overflow minimum, so at least one
        // entry migrates onto the wheel; pops arrive in (at, seq) order,
        // so the non-batch cur_ inserts all append at the tail.
        MigrateOverflow();
      }
      continue;
    }

    // Turn the wheel straight to the next occupied bucket (one bitmap
    // word-scan), then refresh bounds and migrate overflow once. Skipping
    // the per-tick work is safe because every wheel entry fires before
    // every overflow entry (wheel times < horizon_ <= overflow times), so
    // nothing in overflow can preempt the bucket the scan lands on — and
    // entries migrating after the jump land strictly after the current
    // bucket (their times are >= the pre-jump horizon).
    const std::size_t mask = bucket_count_ - 1;
    const std::size_t start = (tick_ + 1) & mask;
    const std::size_t idx = NextOccupied(start);
    if (idx >= bucket_count_) {
      // Unreachable while wheel_entries_ > 0; treat as an empty wheel so
      // the rebase path re-derives state instead of spinning.
      assert(idx < bucket_count_);
      wheel_entries_ = 0;
      continue;
    }
    tick_ += 1 + ((idx - start) & mask);
    RefreshBounds();
    std::vector<Entry>& b = buckets_[idx];
    cur_.swap(b);
    ClearOccupied(idx);
    SortEntries(cur_);
    if (!overflow_.empty()) MigrateOverflow();
  }
}

std::size_t EventQueue::NextOccupied(std::size_t start) const {
  const std::size_t nwords = bucket_bits_.size();
  std::size_t w = start >> 6;
  std::uint64_t word =
      bucket_bits_[w] & (~std::uint64_t{0} << (start & 63));
  // <= nwords iterations: the first (masked) word is re-scanned unmasked
  // at the end, covering bits cyclically before `start`.
  for (std::size_t scanned = 0; scanned <= nwords; ++scanned) {
    if (word != 0) {
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    }
    w = w + 1 == nwords ? 0 : w + 1;
    word = bucket_bits_[w];
  }
  return bucket_count_;
}

Time EventQueue::NextTime() const {
  if (backend_ == QueueBackend::kHeap) {
    DropStaleHeapHead();
    return heap_.empty() ? kTimeInfinity : heap_.front().at;
  }
  // Turning the wheel only reorders internal storage — the observable
  // event sequence is unchanged — so this mirrors the heap's mutable
  // lazy stale-drop.
  auto* self = const_cast<EventQueue*>(this);
  if (!self->AdvanceToNextLive()) return kTimeInfinity;
  return cur_[cur_pos_].at;
}

void EventQueue::FireEntry(const Entry& entry) {
  EventFn fn = std::move(slots_[entry.slot].fn);
  // Recycle before firing: fn may schedule follow-up events and can take
  // this very slot back under a fresh generation.
  Release(entry.slot);
  --live_;
  if (backend_ == QueueBackend::kCalendar && bucket_count_ > kMinBuckets &&
      live_ < bucket_count_ / 8) {
    Rebuild(bucket_count_ / 2);
  }
  fn();
}

Time EventQueue::RunNext() {
  Entry entry;
  if (backend_ == QueueBackend::kHeap) {
    DropStaleHeapHead();
    assert(!heap_.empty());
    entry = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  } else {
    const bool have = AdvanceToNextLive();
    assert(have);
    (void)have;
    entry = cur_[cur_pos_++];
    --wheel_entries_;
  }
  FireEntry(entry);
  return entry.at;
}

bool EventQueue::RunNextAtMost(Time until, Time* at) {
  Entry entry;
  if (backend_ == QueueBackend::kHeap) {
    DropStaleHeapHead();
    if (heap_.empty() || heap_.front().at > until) return false;
    entry = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  } else {
    if (!AdvanceToNextLive() || cur_[cur_pos_].at > until) return false;
    entry = cur_[cur_pos_++];
    --wheel_entries_;
  }
  *at = entry.at;  // before the callback so a driver clock can alias it
  FireEntry(entry);
  return true;
}

}  // namespace kairos::sim
