#include "sim/event_queue.h"

#include <cassert>

namespace kairos::sim {

EventId EventQueue::Schedule(Time at, EventFn fn) {
  const EventId id = fns_.size();
  fns_.push_back(std::move(fn));
  cancelled_.push_back(false);
  heap_.push(Entry{at, next_seq_++, id});
  ++live_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id] || !fns_[id]) return false;
  cancelled_[id] = true;
  assert(live_ > 0);
  --live_;
  return true;
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

Time EventQueue::NextTime() const {
  DropCancelledHead();
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

Time EventQueue::RunNext() {
  DropCancelledHead();
  assert(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  EventFn fn = std::move(fns_[entry.id]);
  fns_[entry.id] = nullptr;  // marks as fired
  --live_;
  fn();
  return entry.at;
}

}  // namespace kairos::sim
