#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace kairos::sim {
namespace {
constexpr std::uint64_t kSlotMask = 0xffffffffull;
}  // namespace

EventId EventQueue::Schedule(Time at, EventFn fn) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push(Entry{at, next_seq_++, slot, s.generation});
  ++live_;
  return (static_cast<EventId>(s.generation) << 32) | slot;
}

void EventQueue::Release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  // Generation 0xFFFFFFFF is a retirement sentinel: once a slot exhausts
  // its generation space it is never reused, so a hoarded stale id can
  // never wrap around onto a future event (no ABA even across 2^32
  // schedules of one slot). Costs one dead slot per 2^32 firings.
  if (++s.generation != 0xFFFFFFFFu) free_.push_back(slot);
}

bool EventQueue::Cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return false;  // already fired, already cancelled, or slot recycled
  }
  // The heap entry stays behind; DropStaleHead discards it lazily by
  // generation mismatch once it reaches the head.
  Release(slot);
  assert(live_ > 0);
  --live_;
  return true;
}

void EventQueue::DropStaleHead() const {
  while (!heap_.empty() &&
         slots_[heap_.top().slot].generation != heap_.top().generation) {
    heap_.pop();
  }
}

Time EventQueue::NextTime() const {
  DropStaleHead();
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

Time EventQueue::RunNext() {
  DropStaleHead();
  assert(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  EventFn fn = std::move(slots_[entry.slot].fn);
  // Recycle before firing: fn may schedule follow-up events and can take
  // this very slot back under a fresh generation.
  Release(entry.slot);
  --live_;
  fn();
  return entry.at;
}

}  // namespace kairos::sim
