// Priority event queue for the discrete-event simulator. Ties in time break
// by insertion sequence so replays are fully deterministic. Fired and
// cancelled events return their slots to a free list, so memory is bounded
// by the number of *concurrently* pending events — long streaming runs
// (serving::Engine sources re-scheduling forever) no longer grow without
// bound.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace kairos::sim {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// Handle that allows cancelling a scheduled event. Encodes a slot index
/// plus the slot's generation at scheduling time, so a handle outlives its
/// event safely: cancelling after the event fired — even after the slot
/// was recycled for a newer event — is a guaranteed no-op.
using EventId = std::uint64_t;

/// Min-heap of timestamped events with stable ordering, O(log n)
/// cancellation (lazy deletion) and free-list slot reuse.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventId Schedule(Time at, EventFn fn);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a no-op and returns false — including when
  /// the event's slot has since been recycled for a newer event (the
  /// generation tag in the id distinguishes them).
  bool Cancel(EventId id);

  /// True when no live events remain.
  bool Empty() const { return live_ == 0; }

  /// Number of live (not cancelled, not fired) events.
  std::size_t Size() const { return live_; }

  /// Slots currently backing the queue: the high-water mark of
  /// *concurrently* scheduled events, not of events ever scheduled.
  /// Bounded under steady-state churn (see sim_test's free-list case).
  std::size_t SlotCount() const { return slots_.size(); }

  /// Time of the next live event; kTimeInfinity when empty.
  Time NextTime() const;

  /// Pops and runs the next live event; returns its time. Must not be
  /// called when Empty().
  Time RunNext();

 private:
  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;  ///< bumped on release; stale ids no-op
  };
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops heap entries whose slot was already released (cancelled events,
  /// detected by generation mismatch).
  void DropStaleHead() const;

  /// Recycles a slot: frees the callback, invalidates outstanding ids.
  void Release(std::uint32_t slot);

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< recycled slot indices
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace kairos::sim
