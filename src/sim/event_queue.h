// Priority event queue for the discrete-event simulator. Ties in time break
// by insertion sequence so replays are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace kairos::sim {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// Handle that allows cancelling a scheduled event.
using EventId = std::uint64_t;

/// Min-heap of timestamped events with stable ordering and O(log n)
/// cancellation (lazy deletion).
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventId Schedule(Time at, EventFn fn);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a no-op and returns false.
  bool Cancel(EventId id);

  /// True when no live events remain.
  bool Empty() const { return live_ == 0; }

  /// Number of live (not cancelled, not fired) events.
  std::size_t Size() const { return live_; }

  /// Time of the next live event; kTimeInfinity when empty.
  Time NextTime() const;

  /// Pops and runs the next live event; returns its time. Must not be
  /// called when Empty().
  Time RunNext();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void DropCancelledHead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventFn> fns_;        // indexed by EventId
  std::vector<bool> cancelled_;     // indexed by EventId
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace kairos::sim
