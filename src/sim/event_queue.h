// Priority event queue for the discrete-event simulator. Ties in time break
// by insertion sequence so replays are fully deterministic. Fired and
// cancelled events return their slots to a free list, so memory is bounded
// by the number of *concurrently* pending events — long streaming runs
// (serving::Engine sources re-scheduling forever) no longer grow without
// bound.
//
// Two interchangeable backends sit behind one API:
//
//  - kCalendar (default): a calendar queue / single-level timing wheel.
//    Near-future events land in width-sized buckets indexed by an integer
//    tick; the current bucket is drained from a sorted vector; events past
//    the horizon wait in a min-heap overflow lane and migrate onto the
//    wheel as it turns. Schedule and RunNext are O(1) amortized at steady
//    state, with bucket count and width re-fitted from the live-event
//    distribution when occupancy drifts.
//  - kHeap: the original binary heap, kept as the correctness oracle.
//
// Determinism contract: both backends fire events in exactly (at, seq)
// order — seq is the global schedule counter, so equal timestamps fire
// FIFO — and both recycle slots at the same points, so EventIds, firing
// order and SlotCount() are bit-identical across backends for identical
// Schedule/Cancel/RunNext sequences. tests/event_queue_property_test.cc
// pins this with randomized interleavings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/time.h"

namespace kairos::sim {

/// Callback executed when an event fires. Move-only, with inline storage
/// sized for the engine's largest hot-path capture (48 bytes: a `this`
/// pointer, an index, a 24-byte Query and a Time), so steady-state event
/// scheduling performs no heap allocation. Larger captures fall back to
/// the heap transparently.
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the callback. Undefined when empty (callers guard via the
  /// slot-generation check).
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `to` and destroys `from`. nullptr means the
    /// payload is trivially relocatable: a raw memcpy of the buffer moves
    /// it — the hot path for every engine lambda (POD captures) and for
    /// the heap fallback (a bare pointer).
    void (*relocate)(void* from, void* to);
    /// nullptr means trivially destructible: releasing is free.
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<D*>(s))(); },
      std::is_trivially_copyable_v<D>
          ? static_cast<void (*)(void*, void*)>(nullptr)
          : [](void* from, void* to) {
              ::new (to) D(std::move(*static_cast<D*>(from)));
              static_cast<D*>(from)->~D();
            },
      std::is_trivially_destructible_v<D>
          ? static_cast<void (*)(void*)>(nullptr)
          : [](void* s) { static_cast<D*>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**static_cast<D**>(s))(); },
      nullptr,  // the stored D* relocates by memcpy
      [](void* s) { delete *static_cast<D**>(s); },
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }
  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineSize);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Handle that allows cancelling a scheduled event. Encodes a slot index
/// plus the slot's generation at scheduling time, so a handle outlives its
/// event safely: cancelling after the event fired — even after the slot
/// was recycled for a newer event — is a guaranteed no-op.
using EventId = std::uint64_t;

/// Event-queue implementation choice. kCalendar is the production default;
/// kHeap is the reference oracle raced against it in tests and perf_suite.
enum class QueueBackend {
  kCalendar,
  kHeap,
};

/// Backend used by default-constructed queues (and thus Simulators).
/// Initialized from the KAIROS_EVENT_QUEUE environment variable
/// ("calendar"/"wheel" or "heap") when set, else kCalendar.
QueueBackend DefaultQueueBackend();

/// Overrides the process-wide default backend (tests use this to race the
/// whole fleet co-simulation against the heap oracle).
void SetDefaultQueueBackend(QueueBackend backend);

/// Timestamped event queue with stable FIFO tie-breaks, O(1) amortized
/// scheduling (calendar backend), lazy cancellation and free-list slot
/// reuse.
class EventQueue {
 public:
  EventQueue() : EventQueue(DefaultQueueBackend()) {}
  explicit EventQueue(QueueBackend backend);

  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventId Schedule(Time at, EventFn fn);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a no-op and returns false — including when
  /// the event's slot has since been recycled for a newer event (the
  /// generation tag in the id distinguishes them).
  bool Cancel(EventId id);

  /// True when no live events remain.
  bool Empty() const { return live_ == 0; }

  /// Number of live (not cancelled, not fired) events.
  std::size_t Size() const { return live_; }

  /// Slots currently backing the queue: the high-water mark of
  /// *concurrently* scheduled events, not of events ever scheduled.
  /// Bounded under steady-state churn (see sim_test's free-list case).
  std::size_t SlotCount() const { return slots_.size(); }

  /// Backend this queue was constructed with.
  QueueBackend backend() const { return backend_; }

  /// Time of the next live event; kTimeInfinity when empty.
  Time NextTime() const;

  /// Pops and runs the next live event; returns its time. Must not be
  /// called when Empty().
  Time RunNext();

  /// Fires the next live event only if its time is <= `until`. Writes the
  /// event's time to *at (before invoking the callback, so a driver can
  /// alias its clock) and returns true when an event fired. One advance
  /// pass instead of the NextTime-then-RunNext pair.
  bool RunNextAtMost(Time until, Time* at);

 private:
  struct Slot {
    EventFn fn;
    std::uint32_t generation = 0;  ///< bumped on release; stale ids no-op
  };
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  /// (at, seq) lexicographic "fires earlier" order.
  struct Earlier {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };
  /// Heap comparator: top() is the earliest entry.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool IsStale(const Entry& e) const {
    return slots_[e.slot].generation != e.generation;
  }

  /// Where the most recent RouteEntry filed its entry: a ring index, or
  /// one of the sentinels below. Lets Cancel-right-after-Schedule (the
  /// doomed-timer pattern) remove the entry from its container tail
  /// instead of leaving a stale record for the drain scan.
  static constexpr std::size_t kRoutedCur = ~std::size_t{0};
  static constexpr std::size_t kRoutedOverflow = ~std::size_t{0} - 1;

  /// Pops the entry identified by (slot, generation) if it still sits at
  /// the tail of the container it was last routed to. Tail removal never
  /// reorders anything, and a cancelled entry is invisible either way —
  /// this is purely an allocation/scan saving.
  void TryEraseRoutedTail(std::uint32_t slot, std::uint32_t generation);

  /// Fires `entry` after recycling its slot; shared by RunNext and
  /// RunNextAtMost.
  void FireEntry(const Entry& entry);

  /// Recycles a slot: frees the callback, invalidates outstanding ids.
  void Release(std::uint32_t slot);

  // --- heap backend ---------------------------------------------------
  /// Pops heap entries whose slot was already released (cancelled events,
  /// detected by generation mismatch).
  void DropStaleHeapHead() const;

  // --- calendar backend -----------------------------------------------
  /// Canonical boundary of absolute bucket `k`: origin_ + k * width_.
  /// Always computed by multiplication (never accumulated) so the bucket
  /// an event maps to is a pure monotone function of its timestamp —
  /// the property that makes wheel firing order bit-identical to the
  /// heap's (at, seq) order.
  Time Boundary(std::uint64_t k) const {
    return origin_ + static_cast<Time>(k) * width_;
  }

  /// Re-derives the cached bucket bounds from (origin_, tick_, width_,
  /// bucket_count_). Always assigned from Boundary() so cached values are
  /// bit-identical to the canonical expressions.
  void RefreshBounds() {
    cur_end_ = Boundary(tick_ + 1);
    horizon_ = Boundary(tick_ + bucket_count_);
  }

  /// Call after assigning width_: caches the reciprocal used by the
  /// routing guess (kept out of RefreshBounds — a divide per tick would
  /// dominate the advance loop).
  void SetWidth(Time w) {
    width_ = w;
    inv_width_ = 1.0 / w;
  }

  /// Sorts entries by (at, seq); insertion sort below the introsort
  /// crossover since bucket loads are typically a handful of entries.
  static void SortEntries(std::vector<Entry>& v);

  /// Index of the first non-empty bucket at or cyclically after `start`
  /// (a bucket index, not a tick); bucket_count_ when every bucket is
  /// empty. Purely a bitmap scan.
  std::size_t NextOccupied(std::size_t start) const;

  /// Sets / clears `idx`'s occupancy bit.
  void MarkOccupied(std::size_t idx) {
    bucket_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  void ClearOccupied(std::size_t idx) {
    bucket_bits_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }

  /// Files `e` into the current bucket, a future bucket, or overflow.
  /// With `batch` set the current-bucket path appends unsorted (callers
  /// sort cur_ once afterwards); otherwise it keeps cur_ sorted.
  void RouteEntry(const Entry& e, bool batch);

  /// Moves overflow entries that fell below the wheel horizon onto the
  /// wheel. Called after every tick advance and rebase.
  void MigrateOverflow();

  /// Pushes/pops on the overflow min-heap (vector + std::*_heap so the
  /// rebuild path can drain it without O(n log n) pops).
  void OverflowPush(const Entry& e);
  Entry OverflowPop();

  /// Re-fits the wheel: collects all live entries, re-samples the bucket
  /// width from their spacing (interquartile mean gap — robust against
  /// far-future outliers), rebases the origin at the earliest event and
  /// re-routes everything into `new_count` buckets. O(n log n), amortized
  /// against the ≥ n/2 operations between occupancy-threshold crossings.
  void Rebuild(std::size_t new_count);

  /// Ensures cur_[cur_pos_] is the globally next live event: drops stale
  /// entries, turns the wheel, migrates overflow, and rebases onto the
  /// overflow lane when the wheel goes empty. Returns false only when no
  /// live event exists. The all-hot common case — a live entry already at
  /// the drain position — stays inline; everything else is the slow path.
  bool AdvanceToNextLive() {
    if (cur_pos_ < cur_.size()) {
      const Entry& e = cur_[cur_pos_];
      if (slots_[e.slot].generation == e.generation) return true;
    }
    return AdvanceToNextLiveSlow();
  }
  bool AdvanceToNextLiveSlow();

  QueueBackend backend_;

  // Shared slot store: identical across backends for identical op
  // sequences, which is what makes EventIds and SlotCount() comparable.
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< recycled slot indices
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  // Heap backend state.
  mutable std::vector<Entry> heap_;

  // Calendar backend state. Mutable in effect: NextTime() is const but may
  // turn the wheel (it only reorders internal storage, never changes the
  // observable sequence of events) — it const_casts to reuse
  // AdvanceToNextLive, mirroring the heap's mutable lazy-drop.
  std::vector<Entry> cur_;    ///< current bucket, sorted by (at, seq)
  std::size_t cur_pos_ = 0;   ///< drain position within cur_
  std::vector<std::vector<Entry>> buckets_;  ///< future ring, unsorted
  /// One bit per bucket: set while the bucket is non-empty. The advance
  /// loop word-scans it to jump straight to the next occupied bucket, so
  /// turning the wheel costs O(occupied gap / 64) instead of one boundary
  /// refresh + probe per empty bucket (the low-occupancy hot cost).
  std::vector<std::uint64_t> bucket_bits_;
  std::size_t bucket_count_ = 0;             ///< power of two
  Time origin_ = 0.0;         ///< absolute time of bucket 0's left edge
  std::uint64_t tick_ = 0;    ///< absolute index of the current bucket
  Time width_ = 1e-4;         ///< bucket width, re-fitted by Rebuild
  Time inv_width_ = 1e4;      ///< cached 1 / width_ (routing guess only)
  Time cur_end_ = 0.0;        ///< cached Boundary(tick_ + 1)
  Time horizon_ = 0.0;        ///< cached Boundary(tick_ + bucket_count_)
  std::size_t wheel_entries_ = 0;  ///< entries in cur_[cur_pos_..] + buckets_
  std::size_t last_routed_ = 0;    ///< destination of the last RouteEntry
  std::vector<Entry> overflow_;    ///< min-heap of events past the horizon
  std::vector<Entry> rebuild_scratch_;
};

}  // namespace kairos::sim
