#include "sim/simulator.h"

#include <algorithm>

namespace kairos::sim {

std::size_t Simulator::RunUntil(Time until) {
  std::size_t fired = 0;
  while (queue_.RunNextAtMost(until, &now_)) ++fired;
  if (queue_.Empty() == false && until < kTimeInfinity) {
    now_ = std::max(now_, until);
  }
  return fired;
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  now_ = queue_.NextTime();
  queue_.RunNext();
  return true;
}

}  // namespace kairos::sim
