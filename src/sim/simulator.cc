#include "sim/simulator.h"

#include <algorithm>

namespace kairos::sim {

EventId Simulator::After(Time delay, EventFn fn) {
  return At(now_ + std::max(0.0, delay), std::move(fn));
}

EventId Simulator::At(Time at, EventFn fn) {
  return queue_.Schedule(std::max(now_, at), std::move(fn));
}

std::size_t Simulator::RunUntil(Time until) {
  std::size_t fired = 0;
  while (!queue_.Empty() && queue_.NextTime() <= until) {
    now_ = queue_.NextTime();
    queue_.RunNext();
    ++fired;
  }
  if (queue_.Empty() == false && until < kTimeInfinity) {
    now_ = std::max(now_, until);
  }
  return fired;
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  now_ = queue_.NextTime();
  queue_.RunNext();
  return true;
}

}  // namespace kairos::sim
