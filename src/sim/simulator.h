// Discrete-event simulator: a clock plus an event queue. The serving system
// (serving/system.h) drives its instances and controller through this.
#pragma once

#include <algorithm>
#include <cstddef>

#include "sim/event_queue.h"

namespace kairos::sim {

/// Deterministic single-threaded discrete-event simulator.
class Simulator {
 public:
  /// Uses the process default event-queue backend (see
  /// DefaultQueueBackend / KAIROS_EVENT_QUEUE).
  Simulator() = default;

  /// Pins the event-queue backend, letting tests and perf_suite race the
  /// calendar wheel against the binary-heap oracle on the same workload.
  explicit Simulator(QueueBackend backend) : queue_(backend) {}

  /// Current simulation time (seconds).
  Time Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (clamped at now).
  /// Inline so the EventFn construction fuses with Schedule's slot store.
  EventId After(Time delay, EventFn fn) {
    return queue_.Schedule(now_ + std::max(0.0, delay), std::move(fn));
  }

  /// Schedules `fn` at the absolute time `at` (clamped at now).
  EventId At(Time at, EventFn fn) {
    return queue_.Schedule(std::max(now_, at), std::move(fn));
  }

  /// Cancels a scheduled event; no-op if already fired/cancelled.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Runs events until the queue is empty or `until` is passed; the clock
  /// ends at the last fired event (or `until` if the horizon was hit).
  /// Returns the number of events fired.
  std::size_t RunUntil(Time until = kTimeInfinity);

  /// Fires exactly one event if any; returns whether one fired.
  bool Step();

  /// Time of the next pending event; kTimeInfinity when idle. Lets a
  /// driver (serving::Engine::AdvanceTo) fire events one at a time up to a
  /// horizon while checking its own stop conditions between events.
  Time NextEventTime() const { return queue_.NextTime(); }

  /// Moves the clock forward to `t` without firing anything (no-op when
  /// `t` is in the past). Used by streaming drivers so a quiet engine
  /// still reports Now() == the advance horizon.
  void FastForward(Time t) { now_ = std::max(now_, t); }

  /// True when no pending events remain.
  bool Idle() const { return queue_.Empty(); }

  /// Live (scheduled, not cancelled, not fired) events. The telemetry
  /// plane reads this at fleet barriers as an event-queue depth gauge.
  std::size_t PendingEvents() const { return queue_.Size(); }

 private:
  Time now_ = 0.0;
  EventQueue queue_;
};

}  // namespace kairos::sim
